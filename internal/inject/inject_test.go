package inject

import (
	"context"
	"testing"

	"avfstress/internal/codegen"
	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/simcache"
	"avfstress/internal/uarch"
)

var bg = context.Background()

func testProgram(t *testing.T, cfg uarch.Config) *prog.Program {
	t.Helper()
	k := codegen.Knobs{LoopSize: 81, NumLoads: 29, NumStores: 28,
		NumIndepArith: 5, MissDependent: 7, AvgChainLength: 2.14,
		DepDistance: 6, FracLongLatency: 0.8, FracRegReg: 0.93, Seed: 42}
	p, _, err := codegen.Generate(cfg, k, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testOptions(t *testing.T, trials int) Options {
	t.Helper()
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	return Options{
		Config:  cfg,
		Program: testProgram(t, cfg),
		Run:     pipe.RunConfig{MaxInstructions: 6_000, WarmupInstructions: 2_000},
		Trials:  trials,
		Seed:    1,
	}
}

// TestCampaignValidatesACE is the acceptance experiment: for a fixed
// seed and ≥1000 trials on the scaled baseline, the injection-measured
// AVF's 95% confidence interval must contain the ACE-based AVF — both
// bit-weighted and rate-derated — and every trial must classify (no
// trial is lost to an error).
func TestCampaignValidatesACE(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-replay campaign in -short mode")
	}
	res, err := Run(bg, testOptions(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials < 1000 {
		t.Fatalf("ran %d trials, want >= 1000", res.Trials)
	}
	if got := res.SDC + res.Detected + res.Masked + res.Pruned; got != res.Trials {
		t.Fatalf("outcome counts %d != trials %d", got, res.Trials)
	}
	for _, sr := range res.Structures {
		if got := sr.SDC + sr.Detected + sr.Masked + sr.Pruned; got != sr.Trials {
			t.Fatalf("%s: outcome counts %d != trials %d", sr.Structure, got, sr.Trials)
		}
	}
	if !res.CI.Contains(res.ACEAVF) {
		t.Errorf("ACE AVF %.4f outside injection 95%% CI [%.4f, %.4f] (measured %.4f)\n%s",
			res.ACEAVF, res.CI.Lo, res.CI.Hi, res.AVF, res)
	}
	if !res.DeratedCI.Contains(res.DeratedACE) {
		t.Errorf("derated ACE %.4f outside derated 95%% CI [%.4f, %.4f] (measured %.4f)\n%s",
			res.DeratedACE, res.DeratedCI.Lo, res.DeratedCI.Hi, res.DeratedAVF, res)
	}
	if res.SDC == 0 || res.Masked == 0 {
		t.Errorf("degenerate campaign: %d SDC / %d masked\n%s", res.SDC, res.Masked, res)
	}
	// Uniform rates: nothing is detection-protected, and the derated
	// aggregate equals the bit-weighted one.
	if res.Detected != 0 {
		t.Errorf("%d detected outcomes under uniform rates", res.Detected)
	}
	if res.DeratedAVF != res.AVF || res.DeratedACE != res.ACEAVF {
		t.Error("uniform-rate derated aggregate differs from bit-weighted")
	}
}

// TestCampaignDetectedTaxonomy: under EDR rates, corruptions in the
// protected queues classify as detected (DUE), never SDC, and the
// protected structures contribute nothing to the derated aggregate.
func TestCampaignDetectedTaxonomy(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	o := testOptions(t, 60)
	o.Rates = uarch.EDRRates()
	o.Structures = []uarch.Structure{uarch.ROB, uarch.SQData, uarch.IQ}
	res, err := Run(bg, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res.Structures {
		protected := o.Rates[sr.Structure] == 0
		if protected && sr.SDC != 0 {
			t.Errorf("%s: %d SDC on a detection-protected structure", sr.Structure, sr.SDC)
		}
		if !protected && sr.Detected != 0 {
			t.Errorf("%s: %d detected on an unprotected structure", sr.Structure, sr.Detected)
		}
	}
	if res.Detected == 0 {
		t.Error("EDR campaign on the ROB found no detected outcomes")
	}
	// ROB and SQ are rate-zero; only the IQ stratum carries derated
	// weight.
	var iq StructureResult
	for _, sr := range res.Structures {
		if sr.Structure == uarch.IQ {
			iq = sr
		}
	}
	if res.DeratedAVF != iq.AVF {
		t.Errorf("derated AVF %.4f != IQ stratum %.4f under EDR weights", res.DeratedAVF, iq.AVF)
	}
}

// TestCampaignByteDeterministic: same seed ⇒ byte-identical report —
// across independent runs, across worker counts, and across a cold and
// a warm disk cache (the warm run must be served from the blob tier
// without a single replay).
func TestCampaignByteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	dir := t.TempDir()
	o := testOptions(t, 200)

	o.Cache = simcache.New(simcache.Options{Dir: dir})
	o.Parallelism = 1
	cold, err := Run(bg, o)
	if err != nil {
		t.Fatal(err)
	}
	if o.Cache.Stats().Simulated == 0 {
		t.Fatal("cold campaign replayed nothing")
	}

	// Fresh store, same directory: warm from disk, zero replays.
	o.Cache = simcache.New(simcache.Options{Dir: dir})
	o.Parallelism = 4
	warm, err := Run(bg, o)
	if err != nil {
		t.Fatal(err)
	}
	if st := o.Cache.Stats(); st.Simulated != 0 || st.DiskHits == 0 {
		t.Errorf("warm campaign stats %v, want 0 simulated and >0 disk hits", st)
	}

	// No cache at all: every trial replayed, same bytes.
	o.Cache = nil
	bare, err := Run(bg, o)
	if err != nil {
		t.Fatal(err)
	}
	if cold.String() != warm.String() || cold.String() != bare.String() {
		t.Errorf("campaign reports differ across cache states:\ncold:\n%s\nwarm:\n%s\nbare:\n%s",
			cold, warm, bare)
	}
}

// TestCampaignCheckpointIntervalInvariance: the checkpoint interval is
// a pure replay accelerator — the rendered report must be byte-identical
// with checkpointing disabled, automatic, dense and sparse, and across
// worker counts, with no cache to hide differences behind.
func TestCampaignCheckpointIntervalInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	o := testOptions(t, 200)
	o.CheckpointInterval = -1
	o.Parallelism = 1
	base, err := Run(bg, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		interval int64
		workers  int
	}{{0, 1}, {0, 4}, {1024, 2}, {16384, 4}} {
		o.CheckpointInterval = tc.interval
		o.Parallelism = tc.workers
		got, err := Run(bg, o)
		if err != nil {
			t.Fatalf("interval %d workers %d: %v", tc.interval, tc.workers, err)
		}
		if got.String() != base.String() {
			t.Errorf("interval %d workers %d: report differs from checkpoint-free run:\n%s\nvs\n%s",
				tc.interval, tc.workers, got, base)
		}
	}
}

// TestCampaignWarmNoGoldenRerun: a warm cache serves the golden result,
// its replay facts and every trial outcome from the blob tier — the
// second campaign simulates nothing, even when it asks for a checkpoint
// interval the cold run never captured.
func TestCampaignWarmNoGoldenRerun(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	dir := t.TempDir()
	o := testOptions(t, 120)
	o.Cache = simcache.New(simcache.Options{Dir: dir})
	cold, err := Run(bg, o)
	if err != nil {
		t.Fatal(err)
	}
	if o.Cache.Stats().Simulated == 0 {
		t.Fatal("cold campaign simulated nothing")
	}

	for _, interval := range []int64{0, 16384, -1} {
		o.Cache = simcache.New(simcache.Options{Dir: dir})
		o.CheckpointInterval = interval
		warm, err := Run(bg, o)
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		if st := o.Cache.Stats(); st.Simulated != 0 {
			t.Errorf("interval %d: warm campaign simulated %d golden/replay runs, want 0\nstats: %v",
				interval, st.Simulated, st)
		}
		if warm.String() != cold.String() {
			t.Errorf("interval %d: warm report differs from cold", interval)
		}
	}
}

// TestCampaignCancellation: a cancelled context aborts the campaign
// with the context's error.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := Run(ctx, testOptions(t, 50)); err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
}

func TestAllocate(t *testing.T) {
	n := allocate(100, 1, []float64{0.5, 0.3, 0.2})
	if n[0] != 50 || n[1] != 30 || n[2] != 20 {
		t.Fatalf("allocate = %v", n)
	}
	n = allocate(10, 3, []float64{0.94, 0.03, 0.03})
	if n[0] < 9 || n[1] != 3 || n[2] != 3 {
		t.Fatalf("allocate with floor = %v", n)
	}
	// Largest-remainder rounding hands out every trial.
	n = allocate(7, 0, []float64{1.0 / 3, 1.0 / 3, 1.0 / 3})
	if n[0]+n[1]+n[2] != 7 {
		t.Fatalf("allocate dropped trials: %v", n)
	}
}

func TestWilson(t *testing.T) {
	iv := wilson(0, 50)
	if iv.Lo != 0 || iv.Hi <= 0 || iv.Hi > 0.2 {
		t.Errorf("wilson(0,50) = %+v", iv)
	}
	iv = wilson(50, 50)
	if iv.Hi != 1 || iv.Lo >= 1 || iv.Lo < 0.8 {
		t.Errorf("wilson(50,50) = %+v", iv)
	}
	iv = wilson(25, 50)
	if !iv.Contains(0.5) || iv.Lo < 0.35 || iv.Hi > 0.65 {
		t.Errorf("wilson(25,50) = %+v", iv)
	}
	if iv := wilson(0, 0); iv != (Interval{}) {
		t.Errorf("wilson(0,0) = %+v", iv)
	}
}
