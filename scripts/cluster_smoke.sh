#!/bin/sh
# cluster_smoke proves the campaign-fabric contract end to end over
# real processes and real HTTP (DESIGN.md §13):
#
#  1. Baseline: a solo daemon runs the spec; its report is the
#     byte-exact reference.
#  2. Cluster: a fresh coordinator plus two runner processes run the
#     same spec sharded. One runner is SIGKILLed while it holds job
#     leases; the fabric must steal its claims, finish the campaign,
#     and render the baseline report byte-identically.
#
# On a multi-core host (nproc >= 4) the sharded run must also be no
# slower than the solo run; on smaller machines the three processes
# timeslice one core, so only correctness is asserted.
set -eu

DIR=${CLUSTER_SMOKE_DIR:-$PWD/.cluster-smoke}
ADDR=${CLUSTER_SMOKE_ADDR:-127.0.0.1:18736}
BASE="http://$ADDR"
SPEC='{"scenarios":["faultinject:baseline:uniform:240","faultinject:baseline:rhc:240"],"mode":"reference","scale":32,"seed":1,"workload_instr":100000,"workload_warmup":20000,"checkpoint_interval":-1}'

rm -rf "$DIR"
mkdir -p "$DIR"
go build -o "$DIR/avfstressd" ./cmd/avfstressd

PID=
RPID1=
RPID2=
start_daemon() { # $1 = state dir, $2 = log tag
    "$DIR/avfstressd" -addr "$ADDR" -cache-dir "$1/cache" -journal "$1/jobs.journal" \
        -max-jobs 1 -parallelism 1 -heartbeat 200ms -lease-ttl 2s \
        >>"$DIR/$2.log" 2>&1 &
    PID=$!
    i=0
    until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "cluster-smoke: daemon ($2) never became healthy" >&2
            cat "$DIR/$2.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}
stop_daemon() { # graceful
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    PID=
}
start_runner() { # $1 = runner number; sets RPID$1
    "$DIR/avfstressd" -join "$BASE" -runners 1 -runner-name "smoke-r$1" \
        -cache-dir "$DIR/runner$1/cache" -parallelism 2 \
        >>"$DIR/runner$1.log" 2>&1 &
    eval "RPID$1=\$!"
}
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    [ -n "$RPID1" ] && kill -9 "$RPID1" 2>/dev/null || true
    [ -n "$RPID2" ] && kill -9 "$RPID2" 2>/dev/null || true
}
trap cleanup EXIT

submit() { curl -fsS -X POST -d "$SPEC" "$BASE/v1/jobs" | grep -o '"id": *"job-[0-9]*"' | head -1 | grep -o 'job-[0-9]*'; }
job_status() { curl -fsS "$BASE/v1/jobs/$1" | grep -o '"status": *"[a-z]*"' | head -1 | cut -d'"' -f4; }
cluster_field() { curl -fsS "$BASE/v1/healthz" | grep -o "\"$1\": *[0-9]*" | head -1 | grep -o '[0-9]*$'; }

wait_done() {
    i=0
    while :; do
        st=$(job_status "$1")
        case "$st" in
        done) return 0 ;;
        failed | canceled)
            echo "cluster-smoke: job $1 ended $st" >&2
            curl -fsS "$BASE/v1/jobs/$1" >&2 || true
            exit 1
            ;;
        esac
        i=$((i + 1))
        if [ "$i" -ge 1200 ]; then
            echo "cluster-smoke: job $1 never finished" >&2
            exit 1
        fi
        sleep 0.2
    done
}

# --- Phase 1: the solo baseline -------------------------------------
t0=$(date +%s)
start_daemon "$DIR/solo" solo
idb=$(submit)
wait_done "$idb"
curl -fsS "$BASE/v1/results/$idb?format=text" >"$DIR/solo_report.txt"
stop_daemon
t1=$(date +%s)
solo_secs=$((t1 - t0))
echo "cluster-smoke: solo baseline $idb done in ${solo_secs}s ($(wc -c <"$DIR/solo_report.txt") report bytes)"

# --- Phase 2: coordinator + 2 runners, one killed mid-flight --------
t2=$(date +%s)
start_daemon "$DIR/coord" coord
start_runner 1
start_runner 2
i=0
until [ "$(cluster_field connected_runners)" = 2 ]; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "cluster-smoke: runners never joined the coordinator" >&2
        cat "$DIR/runner1.log" "$DIR/runner2.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "cluster-smoke: 2 runners joined"

idc=$(submit)
# Freeze-probe: SIGSTOP both runners, then ask the coordinator (via
# healthz runner_leases) whether either holds a job lease. A frozen
# process cannot release a claim, so a positive answer cannot go
# stale — SIGKILLing that runner guarantees the fabric must steal.
# The short settle lets releases already on the wire land first.
runner_leases() { curl -fsS "$BASE/v1/healthz" | grep -o "\"$1\": *[0-9]*" | head -1 | grep -o '[0-9]*$'; }
i=0
while :; do
    kill -STOP "$RPID1" "$RPID2"
    sleep 0.2
    h1=$(runner_leases smoke-r1)
    h2=$(runner_leases smoke-r2)
    if [ "${h1:-0}" -gt 0 ]; then
        victim=$RPID1 vname=smoke-r1 held=$h1
        RPID1=
        kill -CONT "$RPID2"
        break
    fi
    if [ "${h2:-0}" -gt 0 ]; then
        victim=$RPID2 vname=smoke-r2 held=$h2
        RPID2=
        kill -CONT "$RPID1"
        break
    fi
    kill -CONT "$RPID1" "$RPID2"
    if [ "$(job_status "$idc")" = done ]; then
        echo "cluster-smoke: job finished before a runner held a lease (spec too small)" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -ge 600 ]; then
        echo "cluster-smoke: no runner ever held a job lease" >&2
        curl -fsS "$BASE/v1/healthz" >&2 || true
        exit 1
    fi
    sleep 0.1
done
kill -9 "$victim"
wait "$victim" 2>/dev/null || true
echo "cluster-smoke: killed $vname while it held $held job lease(s)"

wait_done "$idc"
curl -fsS "$BASE/v1/results/$idc?format=text" >"$DIR/cluster_report.txt"
cmp "$DIR/solo_report.txt" "$DIR/cluster_report.txt"
t3=$(date +%s)
cluster_secs=$((t3 - t2))

leased=$(cluster_field leased_jobs)
stolen=$(cluster_field stolen_jobs)
if [ "${leased:-0}" -le 0 ]; then
    echo "cluster-smoke: coordinator never leased a job to a runner" >&2
    exit 1
fi
if [ "${stolen:-0}" -le 0 ]; then
    echo "cluster-smoke: the killed runner's leases were never stolen" >&2
    curl -fsS "$BASE/v1/healthz" >&2 || true
    exit 1
fi
curl -fsS "$BASE/v1/healthz" | grep -q '"status": "ok"' || {
    echo "cluster-smoke: coordinator unhealthy after runner loss" >&2
    exit 1
}

# Speedup only counts where there are cores to shard across.
if [ "$(nproc 2>/dev/null || echo 1)" -ge 4 ] && [ "$cluster_secs" -gt "$solo_secs" ]; then
    echo "cluster-smoke: sharded run (${cluster_secs}s) slower than solo (${solo_secs}s) on a multi-core host" >&2
    exit 1
fi

echo "cluster-smoke OK: report byte-identical under sharding + runner loss ($leased jobs leased, $stolen stolen; solo ${solo_secs}s, cluster ${cluster_secs}s)"
stop_daemon
kill "$RPID2" 2>/dev/null || true
wait "$RPID2" 2>/dev/null || true
RPID2=
rm -rf "$DIR"
