package experiments

import (
	"fmt"
	"strings"
)

// Names lists the runnable experiments in paper order.
func Names() []string {
	return []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "table3", "worstcase", "powercontrast", "hvf"}
}

// Run executes one named experiment and returns its rendered report.
func (c *Context) Run(name string) (string, error) {
	switch name {
	case "table1":
		return "Table I — " + ConfigTable(c.Baseline), nil
	case "table2":
		return "Table II — " + ConfigTable(c.ConfigA), nil
	case "fig3":
		r, err := c.Fig3()
		return render(r, err)
	case "fig4":
		r, err := c.Fig4()
		return render(r, err)
	case "fig5":
		r, err := c.Fig5()
		return render(r, err)
	case "fig6":
		r, err := c.Fig6()
		return render(r, err)
	case "fig7":
		r, err := c.Fig7()
		return render(r, err)
	case "fig8":
		r, err := c.Fig8()
		return render(r, err)
	case "fig9":
		r, err := c.Fig9()
		return render(r, err)
	case "table3":
		r, err := c.Table3()
		return render(r, err)
	case "worstcase":
		r, err := c.WorstCase()
		return render(r, err)
	case "powercontrast":
		r, err := c.PowerContrast()
		return render(r, err)
	case "hvf":
		r, err := c.HVFStudy()
		return render(r, err)
	}
	return "", fmt.Errorf("experiments: unknown experiment %q (have %s)",
		name, strings.Join(Names(), ", "))
}

func render(r fmt.Stringer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.String(), nil
}

// RunAll executes every experiment in order and returns the combined
// report.
func (c *Context) RunAll() (string, error) {
	var b strings.Builder
	for _, n := range Names() {
		s, err := c.Run(n)
		if err != nil {
			return b.String(), fmt.Errorf("%s: %w", n, err)
		}
		fmt.Fprintf(&b, "%s\n%s\n%s\n\n", strings.Repeat("=", 72), s, strings.Repeat("=", 72))
	}
	return b.String(), nil
}
