// Package ga is a generational genetic-algorithm framework standing in
// for the IBM SNAP tool the paper obtained under NDA. It provides the
// observable behaviour the paper relies on: tournament selection,
// crossover at rate ~0.73 and per-gene mutation at rate ~0.05 (the
// Grefenstette / Srinivas-Patnaik recommended ranges the paper cites),
// elitism, parallel fitness evaluation (the paper ran six simulations in
// parallel), and a convergence-triggered cataclysm that moves the best
// known solution into a fresh random population — the abrupt
// average-fitness drop visible in the paper's Figure 5(b).
package ga

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Gene describes one genome dimension.
type Gene struct {
	Name    string
	Min     float64 // inclusive
	Max     float64 // inclusive
	Integer bool    // values are rounded to integers
}

// quantise snaps v into the gene's domain.
func (g Gene) quantise(v float64) float64 {
	if v < g.Min {
		v = g.Min
	}
	if v > g.Max {
		v = g.Max
	}
	if g.Integer {
		v = math.Round(v)
	}
	return v
}

// Genome is one candidate solution (one value per gene).
type Genome []float64

// Clone returns a copy of the genome.
func (g Genome) Clone() Genome { return append(Genome(nil), g...) }

// Fitness evaluates a genome; larger is better. It must be a pure
// function of the genome for the GA to be deterministic under a seed.
type Fitness func(Genome) (float64, error)

// Config parameterises a run.
type Config struct {
	Genes       []Gene
	PopSize     int
	Generations int

	// CrossoverRate is the probability a selected pair recombines
	// (default 0.73, the value the paper uses).
	CrossoverRate float64
	// MutationRate is the per-gene mutation probability (default 0.05).
	MutationRate float64
	// Elites are the top individuals copied unchanged (default 2).
	Elites int
	// TournamentK is the selection tournament size (default 2).
	TournamentK int

	// CataclysmSpread triggers a cataclysm when the population's relative
	// fitness spread (stddev/mean) stays below this for CataclysmPatience
	// generations (defaults 0.02 and 3).
	CataclysmSpread   float64
	CataclysmPatience int

	// Islands splits the population into that many sub-populations that
	// evolve independently; every MigrationEvery generations each
	// island's best individual migrates to the next island in a ring
	// (SNAP's migration operator: "changing the population of the
	// solution"). 0 or 1 disables the island model. MigrationEvery
	// defaults to 3.
	Islands        int
	MigrationEvery int

	// Parallelism bounds concurrent fitness evaluations (default
	// GOMAXPROCS).
	Parallelism int

	// InitialPopulation seeds the first generation with known genomes
	// (clipped to PopSize); the remainder is random. Useful for resuming
	// a search or biasing it with a known-good solution.
	InitialPopulation []Genome

	// Logf, when set, receives one line per generation (best/avg/worst
	// fitness and cataclysm events) — the convergence stream surfaced
	// by verbose CLI runs and avfstressd job progress. Logging never
	// affects the search trajectory.
	Logf func(format string, args ...interface{})

	Seed int64
}

func (c Config) withDefaults() Config {
	if c.PopSize <= 0 {
		c.PopSize = 50
	}
	if c.Generations <= 0 {
		c.Generations = 50
	}
	if c.CrossoverRate <= 0 {
		c.CrossoverRate = 0.73
	}
	if c.MutationRate <= 0 {
		c.MutationRate = 0.05
	}
	if c.Elites <= 0 {
		c.Elites = 2
	}
	if c.Elites >= c.PopSize {
		c.Elites = c.PopSize - 1
	}
	if c.TournamentK <= 0 {
		c.TournamentK = 2
	}
	if c.CataclysmSpread <= 0 {
		c.CataclysmSpread = 0.02
	}
	if c.CataclysmPatience <= 0 {
		c.CataclysmPatience = 3
	}
	if c.Islands <= 1 {
		c.Islands = 1
	}
	if c.Islands > c.PopSize/2 {
		c.Islands = c.PopSize / 2
	}
	if c.Islands < 1 {
		c.Islands = 1
	}
	if c.MigrationEvery <= 0 {
		c.MigrationEvery = 3
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Genes) == 0 {
		return errors.New("ga: no genes")
	}
	for i, g := range c.Genes {
		if g.Max < g.Min {
			return fmt.Errorf("ga: gene %d (%s): max %v < min %v", i, g.Name, g.Max, g.Min)
		}
	}
	return nil
}

// GenStats summarises one generation.
type GenStats struct {
	Generation int
	Best       float64
	Avg        float64
	Worst      float64
	// Cataclysm marks that a cataclysm was applied after this generation.
	Cataclysm bool
}

// Result is the outcome of a run.
type Result struct {
	// Best is the best genome ever evaluated (cataclysms cannot lose it).
	Best        Genome
	BestFitness float64
	History     []GenStats
	Evaluations int
	Cataclysms  int
}

// Run executes the GA and returns the best solution found. The context
// is checked between generations and between fitness evaluations, so a
// cancellation or deadline stops the search within one generation and
// Run returns the context's error (in-flight evaluations finish first —
// a fitness call is never abandoned midway).
func Run(ctx context.Context, cfg Config, fit Fitness) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fit == nil {
		return nil, errors.New("ga: nil fitness")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pop := make([]Genome, cfg.PopSize)
	for i := range pop {
		if i < len(cfg.InitialPopulation) && len(cfg.InitialPopulation[i]) == len(cfg.Genes) {
			pop[i] = cfg.InitialPopulation[i].Clone()
			for j, gene := range cfg.Genes {
				pop[i][j] = gene.quantise(pop[i][j])
			}
			continue
		}
		pop[i] = randomGenome(cfg.Genes, rng)
	}

	res := &Result{BestFitness: math.Inf(-1)}
	scores := make([]float64, cfg.PopSize)
	// Elite individuals are copied into the next generation verbatim, and
	// Fitness is contractually pure, so re-evaluating them must return the
	// same value: their scores are carried instead of re-simulated. The
	// carry lives in separate arrays so `scores` keeps last generation's
	// values until evaluate overwrites them (migration reads them).
	carryScore := make([]float64, cfg.PopSize)
	carryKnown := make([]bool, cfg.PopSize)
	stale := 0
	for gen := 0; gen < cfg.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n, err := evaluate(ctx, pop, scores, carryScore, carryKnown, fit, cfg.Parallelism)
		if err != nil {
			return nil, fmt.Errorf("ga: generation %d: %w", gen, err)
		}
		res.Evaluations += n

		st := summarise(gen, scores)
		bi := bestIndex(scores)
		if scores[bi] > res.BestFitness {
			res.BestFitness = scores[bi]
			res.Best = pop[bi].Clone()
		}

		// Convergence check → cataclysm (skip on the final generation).
		if st.relSpread() < cfg.CataclysmSpread {
			stale++
		} else {
			stale = 0
		}
		cataclysm := stale >= cfg.CataclysmPatience && gen < cfg.Generations-1
		if cataclysm {
			st.Cataclysm = true
		}
		if cfg.Logf != nil {
			ev := ""
			if st.Cataclysm {
				ev = "  [cataclysm]"
			}
			cfg.Logf("gen %d/%d: best %.4f avg %.4f worst %.4f%s",
				gen+1, cfg.Generations, st.Best, st.Avg, st.Worst, ev)
		}
		res.History = append(res.History, st)
		if cataclysm {
			res.Cataclysms++
			stale = 0
			seed := res.Best.Clone()
			for i := range pop {
				pop[i] = randomGenome(cfg.Genes, rng)
				carryKnown[i] = false
			}
			pop[0] = seed
			carryScore[0], carryKnown[0] = res.BestFitness, true
			continue
		}
		if gen == cfg.Generations-1 {
			break
		}
		if cfg.Islands > 1 {
			pop = nextGenerationIslands(cfg, pop, scores, carryScore, carryKnown, rng)
			if (gen+1)%cfg.MigrationEvery == 0 {
				migrate(cfg, pop, scores, carryScore, carryKnown)
			}
		} else {
			pop = nextGeneration(cfg, pop, scores, carryScore, carryKnown, rng)
		}
	}
	return res, nil
}

// islandBounds returns the [start, end) slice of island i.
func islandBounds(cfg Config, i int) (int, int) {
	per := cfg.PopSize / cfg.Islands
	start := i * per
	end := start + per
	if i == cfg.Islands-1 {
		end = cfg.PopSize
	}
	return start, end
}

// nextGenerationIslands evolves each island independently (selection and
// crossover never cross island boundaries).
func nextGenerationIslands(cfg Config, pop []Genome, scores, carryScore []float64,
	carryKnown []bool, rng *rand.Rand) []Genome {
	next := make([]Genome, 0, len(pop))
	for i := 0; i < cfg.Islands; i++ {
		s, e := islandBounds(cfg, i)
		sub := cfg
		sub.PopSize = e - s
		sub.Elites = 1
		next = append(next, nextGeneration(sub, pop[s:e], scores[s:e],
			carryScore[s:e], carryKnown[s:e], rng)...)
	}
	return next
}

// migrate copies each island's best individual over the worst individual
// of the next island in the ring — SNAP's migration operator. A migrant
// whose source slot carried a known score keeps it (identical genome →
// identical fitness); any other overwritten carry is cleared.
func migrate(cfg Config, pop []Genome, scores, carryScore []float64, carryKnown []bool) {
	type be struct{ best, worst int }
	idx := make([]be, cfg.Islands)
	for i := 0; i < cfg.Islands; i++ {
		s, e := islandBounds(cfg, i)
		b, w := s, s
		for j := s; j < e; j++ {
			if scores[j] > scores[b] {
				b = j
			}
			if scores[j] < scores[w] {
				w = j
			}
		}
		idx[i] = be{b, w}
	}
	// Snapshot the migrants first so a chain of migrations is stable.
	migrants := make([]Genome, cfg.Islands)
	migScore := make([]float64, cfg.Islands)
	migKnown := make([]bool, cfg.Islands)
	for i := range migrants {
		migrants[i] = pop[idx[i].best].Clone()
		migScore[i], migKnown[i] = carryScore[idx[i].best], carryKnown[idx[i].best]
	}
	for i := 0; i < cfg.Islands; i++ {
		dst := (i + 1) % cfg.Islands
		w := idx[dst].worst
		pop[w] = migrants[i]
		carryScore[w], carryKnown[w] = migScore[i], migKnown[i]
	}
}

// relSpread is the population's stddev/|mean| (0 when mean is 0).
func (s GenStats) relSpread() float64 {
	if s.Avg == 0 {
		return 0
	}
	// Approximate spread from the recorded range; cheap and monotone with
	// the true stddev for the purposes of convergence detection.
	return (s.Best - s.Worst) / math.Abs(s.Avg)
}

func summarise(gen int, scores []float64) GenStats {
	st := GenStats{Generation: gen, Best: math.Inf(-1), Worst: math.Inf(1)}
	sum := 0.0
	for _, s := range scores {
		sum += s
		if s > st.Best {
			st.Best = s
		}
		if s < st.Worst {
			st.Worst = s
		}
	}
	st.Avg = sum / float64(len(scores))
	return st
}

func bestIndex(scores []float64) int {
	bi := 0
	for i, s := range scores {
		if s > scores[bi] {
			bi = i
		}
	}
	return bi
}

// evaluate scores the population with a fixed pool of worker goroutines
// pulling individuals off a shared counter. Compared to one goroutine
// per individual this keeps goroutine (and, downstream, pooled-pipeline)
// churn at the parallelism level rather than the population size.
// Individuals with a carried score (elites, the post-cataclysm seed) are
// not re-evaluated — fitness purity guarantees the identical value — and
// the returned count covers only the evaluations actually performed.
// The context is checked before every fitness call (the "between fitness
// batches" cancellation point), so a cancelled search abandons the rest
// of the population without waiting for it.
func evaluate(ctx context.Context, pop []Genome, scores, carryScore []float64,
	carryKnown []bool, fit Fitness, parallelism int) (int, error) {
	n := 0
	for i := range pop {
		if carryKnown[i] {
			scores[i] = carryScore[i]
		} else {
			n++
		}
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := range pop {
			if carryKnown[i] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return n, err
			}
			s, err := fit(pop[i])
			if err != nil {
				return n, fmt.Errorf("individual %d: %w", i, err)
			}
			scores[i] = s
		}
		return n, nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pop) {
					return
				}
				if carryKnown[i] {
					continue
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				s, err := fit(pop[i])
				if err != nil {
					fail(fmt.Errorf("individual %d: %w", i, err))
					continue
				}
				scores[i] = s
			}
		}()
	}
	wg.Wait()
	return n, firstErr
}

// nextGeneration applies elitism, tournament selection, two-point
// crossover and per-gene mutation. Elite copies record their (already
// evaluated) scores in the carry arrays so the next evaluate pass skips
// them; every freshly bred slot has its carry cleared.
func nextGeneration(cfg Config, pop []Genome, scores, carryScore []float64,
	carryKnown []bool, rng *rand.Rand) []Genome {
	n := len(pop)
	next := make([]Genome, 0, n)
	for i := range carryKnown {
		carryKnown[i] = false
	}

	// Elites, best first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < cfg.Elites; i++ {
		bi := i
		for j := i + 1; j < n; j++ {
			if scores[order[j]] > scores[order[bi]] {
				bi = j
			}
		}
		order[i], order[bi] = order[bi], order[i]
		next = append(next, pop[order[i]].Clone())
		carryScore[i], carryKnown[i] = scores[order[i]], true
	}

	sel := func() Genome {
		best := rng.Intn(n)
		for k := 1; k < cfg.TournamentK; k++ {
			c := rng.Intn(n)
			if scores[c] > scores[best] {
				best = c
			}
		}
		return pop[best]
	}
	for len(next) < n {
		a, b := sel().Clone(), sel().Clone()
		if rng.Float64() < cfg.CrossoverRate {
			crossover(a, b, rng)
		}
		mutate(cfg.Genes, a, cfg.MutationRate, rng)
		next = append(next, a)
		if len(next) < n {
			mutate(cfg.Genes, b, cfg.MutationRate, rng)
			next = append(next, b)
		}
	}
	return next
}

// crossover performs two-point crossover in place (single-point for
// short genomes).
func crossover(a, b Genome, rng *rand.Rand) {
	n := len(a)
	if n < 2 {
		return
	}
	i := rng.Intn(n)
	j := rng.Intn(n)
	if i > j {
		i, j = j, i
	}
	for k := i; k <= j; k++ {
		a[k], b[k] = b[k], a[k]
	}
}

// mutate resets each gene with probability rate to a fresh uniform value
// (SNAP-style random reset) or, half the time, perturbs it by a tenth of
// its range.
func mutate(genes []Gene, g Genome, rate float64, rng *rand.Rand) {
	for i, gene := range genes {
		if rng.Float64() >= rate {
			continue
		}
		if rng.Float64() < 0.5 {
			g[i] = sample(gene, rng)
		} else {
			span := gene.Max - gene.Min
			g[i] = gene.quantise(g[i] + rng.NormFloat64()*span/10)
		}
	}
}

func randomGenome(genes []Gene, rng *rand.Rand) Genome {
	g := make(Genome, len(genes))
	for i, gene := range genes {
		g[i] = sample(gene, rng)
	}
	return g
}

func sample(g Gene, rng *rand.Rand) float64 {
	return g.quantise(g.Min + rng.Float64()*(g.Max-g.Min))
}
