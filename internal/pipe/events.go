package pipe

import "math/bits"

// The event-driven core replaces the seed's per-cycle ROB scans with
// one schedule and one broadcast structure:
//
//   - compW, a calendar queue of completion events pushed at issue, so
//     complete() touches only the uops finishing at the current cycle and
//     nextEvent() is a near-O(1) peek;
//   - per-physical-register waiter lists: a consumer with a not-yet-ready
//     source parks on that register at rename, and is woken by
//     broadcast() when the producer's completion event fires — a
//     source's ready cycle is always its producer's completion cycle, so
//     no separate wakeup event queue is needed.
//
// Every schedulable latency is bounded by the memory round trip, so the
// calendar (timing-wheel) representation — a ring of per-cycle buckets
// with an occupancy bitmap — replaces the previous binary heap: pushes
// are an append plus a bit set, and draining a cycle is a bitmap scan
// plus an insertion sort of a (nearly always tiny) bucket. Events are
// consumed in exactly the heap's (cycle, seq) order, which is what
// preserves the scan-based core's oldest-first flush semantics.
//
// Events reference ROB slots by sequence number and are invalidated
// lazily: a misprediction flush rewinds tail without touching the
// calendars, and stale entries are recognised when popped because either
// the sequence number is outside [head, tail) or the slot's generation
// counter (bumped on every dispatch) no longer matches.

// event schedules a completion for the uop at seq on compW.
type event struct {
	cycle int64
	seq   int64
	gen   uint32
}

// eventWheel is a calendar queue of events: a power-of-two ring of
// per-cycle buckets plus an occupancy bitmap. All scheduled cycles lie
// within `size` cycles of `head` (the horizon — enforced by construction
// from the configuration's worst-case latency, with auto-grow as a
// safety net), so bucket index = cycle & mask is collision-free.
//
// Draining moves one bucket at a time into `due`, sorted by sequence
// number; peek/pop then walk `due` in order. Because buckets are begun
// strictly in cycle order and pushes always target cycles ≥ head, the
// consumption order is exactly the (cycle, seq) order of the binary
// heap this replaces.
type eventWheel struct {
	slots   [][]event
	occ     []uint64 // bit per slot: bucket non-empty
	mask    int64
	size    int64
	head    int64   // every cycle < head has been drained into due
	nextDue int64   // exact earliest pending bucket cycle (farAway when none)
	due     []event // begun bucket, sorted by seq
	dueIdx  int
	pending int // events still in buckets (excludes due)
}

// initWheel sizes the wheel for events scheduled at most horizon cycles
// ahead (rounded up to a power of two, minimum 64 slots).
func (w *eventWheel) initWheel(horizon int64) {
	size := int64(64)
	for size < horizon {
		size <<= 1
	}
	w.size = size
	w.mask = size - 1
	w.slots = make([][]event, size)
	w.occ = make([]uint64, size>>6)
	w.nextDue = farAway
}

// push schedules e. The cycle must be ≥ head (events are always pushed
// for future cycles; peek keeps head at most one past the draining
// limit, which is the current cycle).
func (w *eventWheel) push(e event) {
	if e.cycle-w.head >= w.size {
		w.grow(e.cycle)
	}
	if e.cycle < w.head {
		panic("pipe: push below wheel head")
	}
	if e.cycle < w.nextDue {
		w.nextDue = e.cycle
	}
	i := e.cycle & w.mask
	s := &w.slots[i]
	if len(*s) == 0 {
		w.occ[i>>6] |= 1 << uint(i&63)
	}
	*s = append(*s, e)
	w.pending++
}

// grow widens the ring until cycle fits in the horizon, re-bucketing the
// pending events. Only reachable if a configuration's real latencies
// exceed the sized horizon (the initWheel margin makes this effectively
// dead code, kept as a safety net).
func (w *eventWheel) grow(cycle int64) {
	var all []event
	for i := range w.slots {
		all = append(all, w.slots[i]...)
	}
	for w.size <= cycle-w.head {
		w.size <<= 1
	}
	w.mask = w.size - 1
	w.slots = make([][]event, w.size)
	w.occ = make([]uint64, w.size>>6)
	w.pending = 0
	w.nextDue = farAway
	for _, e := range all {
		w.push(e)
	}
}

// beginNextBucket drains the earliest pending bucket with cycle ≤ limit
// into the due buffer (sorted by seq), reporting whether there was one.
// The spent due buffer must be fully consumed. limit is always the
// current cycle, so head — the push floor — never passes a future push
// target.
func (w *eventWheel) beginNextBucket(limit int64) bool {
	if w.nextDue > limit {
		// Nothing due: catch head (the push floor) up so an idle
		// stretch cannot shrink the usable horizon.
		if limit+1 > w.head {
			w.head = limit + 1
		}
		return false
	}
	c := w.nextDue
	s := &w.slots[c&w.mask]
	// Swap the bucket with the spent due buffer instead of copying.
	w.due, *s = *s, w.due[:0]
	w.occ[(c&w.mask)>>6] &^= 1 << uint(c&63)
	w.pending -= len(w.due)
	sortBySeq(w.due)
	w.dueIdx = 0
	w.head = c + 1
	if w.pending == 0 {
		w.nextDue = farAway
	} else {
		w.nextDue = w.nextOccupiedFrom(c + 1)
	}
	return true
}

// hasDue reports whether an event with cycle ≤ limit is queued. Small
// enough to inline, so the per-cycle "anything due?" checks in the stage
// functions cost two compares instead of a call.
func (w *eventWheel) hasDue(limit int64) bool {
	return w.dueIdx < len(w.due) || w.nextDue <= limit
}

// nextOccupiedFrom returns the earliest cycle ≥ from with a non-empty
// bucket; pending must be non-zero and every pending cycle ≥ from.
func (w *eventWheel) nextOccupiedFrom(from int64) int64 {
	start := from & w.mask
	wi := start >> 6
	if b := w.occ[wi] >> uint(start&63); b != 0 {
		return from + int64(bits.TrailingZeros64(b))
	}
	n := int64(len(w.occ))
	for k := int64(1); k <= n; k++ {
		wj := (wi + k) & (n - 1)
		if b := w.occ[wj]; b != 0 {
			off := (wj<<6 + int64(bits.TrailingZeros64(b)) - start) & w.mask
			return from + off
		}
	}
	panic("pipe: event wheel pending but no occupied bucket")
}

// reset empties the wheel in O(occupied buckets), keeping allocations.
func (w *eventWheel) reset() {
	if w.pending > 0 {
		for wi, b := range w.occ {
			for b != 0 {
				i := wi<<6 + bits.TrailingZeros64(b)
				w.slots[i] = w.slots[i][:0]
				b &= b - 1
			}
			w.occ[wi] = 0
		}
	}
	w.pending = 0
	w.nextDue = farAway
	w.due = w.due[:0]
	w.dueIdx = 0
	w.head = 0
}

// sortBySeq insertion-sorts a bucket by sequence number (buckets hold a
// handful of events at most; same-cycle same-seq duplicates can only
// pair a live entry with stale flushed ones, so ties are unordered).
func sortBySeq(es []event) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && es[j].seq > e.seq {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}

// earliestLiveCompletion returns the cycle of the earliest pending live
// completion event (farAway if none), discarding stale flushed events as
// it scans. Unlike peek it never begins a future bucket, so the due
// order and the push floor are untouched — this is the run loop's stall
// fast-forward target.
func (pl *Pipeline) earliestLiveCompletion() int64 {
	w := &pl.compW
	// Leftover due entries exist only after a misprediction flush, and
	// are then all younger than the flushed branch — stale — but scan
	// them for completeness.
	for i := w.dueIdx; i < len(w.due); i++ {
		e := w.due[i]
		if u, ok := pl.live(e.seq, e.gen); ok && u.state == sIssued {
			return e.cycle
		}
	}
	for w.pending > 0 {
		c := w.nextDue
		si := c & w.mask
		s := w.slots[si]
		kept := s[:0]
		for _, e := range s {
			if u, ok := pl.live(e.seq, e.gen); ok && u.state == sIssued {
				kept = append(kept, e)
			}
		}
		w.pending -= len(s) - len(kept)
		w.slots[si] = kept
		if len(kept) > 0 {
			return c
		}
		// Stale-only bucket: clear it; head stays (the bitmap skips it).
		w.occ[si>>6] &^= 1 << uint(si&63)
		if w.pending == 0 {
			w.nextDue = farAway
		} else {
			w.nextDue = w.nextOccupiedFrom(c + 1)
		}
	}
	return farAway
}

// waiterRef parks a dispatched consumer on a physical register whose
// producer has not issued yet (ready cycle still unknown).
type waiterRef struct {
	seq int64
	gen uint32
}

// live reports whether the event or waiter still refers to the uop it was
// created for: in the current ROB window and with a matching generation.
func (pl *Pipeline) live(seq int64, gen uint32) (*uop, bool) {
	if seq < pl.head || seq >= pl.tail {
		return nil, false
	}
	u := pl.at(seq)
	return u, u.gen == gen
}

// broadcast resolves the waiters parked on physical register p when its
// producer completes: each live waiter loses one pending source and
// enters the ready queue when none remain. Waiters from flushed
// consumers fail the generation check and are dropped; waiters parked by
// a previous occupant of a recycled register are likewise stale (they
// were younger than the flush that freed it) and die the same way.
func (pl *Pipeline) broadcast(p int16) {
	w := pl.waiters[p]
	if len(w) == 0 {
		return
	}
	for _, ref := range w {
		u, ok := pl.live(ref.seq, ref.gen)
		if !ok || u.state != sWaiting {
			continue
		}
		u.pendingSrcs--
		if u.pendingSrcs == 0 {
			pl.readyB.set(ref.seq & pl.robMask)
		}
	}
	pl.waiters[p] = w[:0]
}
