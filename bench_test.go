// Benchmarks regenerating every table and figure of the paper's
// evaluation (run: go test -bench=. -benchmem). Each benchmark executes
// the corresponding experiment end-to-end on the scaled configuration
// with the paper's published reference knobs (the GA-search path is
// exercised by BenchmarkFig5_GASearchBaseline) and reports the
// experiment's headline quantities via b.ReportMetric, so the bench log
// doubles as a results table (archived per PR in BENCH_<date>.json).
package avfstress_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"avfstress/internal/avf"
	"avfstress/internal/codegen"
	"avfstress/internal/core"
	"avfstress/internal/experiments"
	"avfstress/internal/ga"
	"avfstress/internal/inject"
	"avfstress/internal/pipe"
	"avfstress/internal/service"
	"avfstress/internal/simcache"
	"avfstress/internal/uarch"
	"avfstress/internal/workloads"
)

// benchOpts are the shared scaled-down settings: reference knobs, short
// workload windows. Each benchmark builds a fresh context per iteration
// so b.N measures full experiment regeneration.
func benchOpts() experiments.Options {
	return experiments.Options{
		Scale: 32, Seed: 1, UseReferenceKnobs: true,
		WorkloadInstr: 100_000, WorkloadWarmup: 40_000,
	}
}

// BenchmarkTableI_BaselineSim measures one baseline stressmark
// simulation (the unit of work everything else repeats).
func BenchmarkTableI_BaselineSim(b *testing.B) {
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	k, _ := experiments.ReferenceKnobs("baseline")
	p, _, err := codegen.Generate(cfg, k, 1<<40)
	if err != nil {
		b.Fatal(err)
	}
	var instrs, cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipe.Simulate(cfg, p, pipe.RunConfig{
			MaxInstructions: 120_000, WarmupInstructions: 40_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		instrs, cycles = res.Instructions, res.Cycles
	}
	b.ReportMetric(float64(instrs), "instrs/run")
	b.ReportMetric(float64(cycles), "cycles/run")
}

// BenchmarkFig3_StressmarkVsSPEC regenerates Figure 3 and reports the
// stressmark's per-class advantage over the best SPEC proxy.
func BenchmarkFig3_StressmarkVsSPEC(b *testing.B) {
	var adv [avf.NumClasses]float64
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		f, err := ctx.Fig3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		for _, cl := range avf.AllClasses() {
			adv[cl] = f.Advantage(cl)
		}
	}
	b.ReportMetric(adv[avf.ClassQSRF], "x-core-adv")
	b.ReportMetric(adv[avf.ClassDL1DTLB], "x-dl1dtlb-adv")
	b.ReportMetric(adv[avf.ClassL2], "x-l2-adv")
}

// BenchmarkFig4_StressmarkVsMiBench regenerates Figure 4.
func BenchmarkFig4_StressmarkVsMiBench(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		f, err := ctx.Fig4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		adv = f.Advantage(avf.ClassQSRF)
	}
	b.ReportMetric(adv, "x-core-adv")
}

// BenchmarkFig5_GASearchBaseline runs the actual GA search (scaled-down
// population) — the paper's 2,500-run search compressed to ~60
// evaluations per iteration.
func BenchmarkFig5_GASearchBaseline(b *testing.B) {
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	eval := pipe.RunConfig{MaxInstructions: 60_000, WarmupInstructions: 30_000}
	var fit float64
	var evals int64
	for i := 0; i < b.N; i++ {
		res, err := core.Search(context.Background(), core.SearchSpec{
			Config: cfg,
			Eval:   eval,
			Final:  eval,
			GA:     ga.Config{PopSize: 10, Generations: 6, Seed: int64(i + 1)},
		})
		if err != nil {
			b.Fatal(err)
		}
		fit, evals = res.Fitness, res.Evaluations
	}
	b.ReportMetric(fit, "fitness")
	b.ReportMetric(float64(evals), "evals")
}

// BenchmarkFig6_PerStructureAVF regenerates the three per-structure AVF
// tables and reports the stressmark's ROB and DL1 AVFs.
func BenchmarkFig6_PerStructureAVF(b *testing.B) {
	var rob, dl1 float64
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		f, err := ctx.Fig6(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		rob, dl1 = f.Stressmark.AVF[uarch.ROB], f.Stressmark.AVF[uarch.DL1]
	}
	b.ReportMetric(rob*100, "%rob-avf")
	b.ReportMetric(dl1*100, "%dl1-avf")
}

// BenchmarkFig7_MitigatedWorkloads evaluates the suite under the RHC and
// EDR fault-rate sets.
func BenchmarkFig7_MitigatedWorkloads(b *testing.B) {
	var rhcTop, edrTop float64
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		f, err := ctx.Fig7(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		rhcTop = f.Parts[0].Stressmark.SER[avf.ClassQSRF]
		edrTop = f.Parts[1].Stressmark.SER[avf.ClassQSRF]
	}
	b.ReportMetric(rhcTop, "rhc-core-ser")
	b.ReportMetric(edrTop, "edr-core-ser")
}

// BenchmarkFig8_FaultRateAdaptation regenerates the three-rate-set
// stressmark comparison.
func BenchmarkFig8_FaultRateAdaptation(b *testing.B) {
	var iqRHC float64
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		f, err := ctx.Fig8(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		iqRHC = f.Marks[1].AVF[uarch.IQ]
	}
	b.ReportMetric(iqRHC*100, "%rhc-iq-avf")
}

// BenchmarkFig9_ConfigA regenerates the Configuration A adaptation.
func BenchmarkFig9_ConfigA(b *testing.B) {
	var rob float64
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		f, err := ctx.Fig9(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		rob = f.Marks[1].AVF[uarch.ROB]
	}
	b.ReportMetric(rob*100, "%configA-rob-avf")
}

// BenchmarkTable3_Estimators regenerates the estimator comparison and
// reports the baseline row (paper: 0.63 / 0.46 / 0.58 / 1.0).
func BenchmarkTable3_Estimators(b *testing.B) {
	var row experiments.Table3Row
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		t3, err := ctx.Table3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		row = t3.Rows[0]
	}
	b.ReportMetric(row.Stressmark, "stressmark")
	b.ReportMetric(row.BestProgramSER, "best-program")
	b.ReportMetric(row.SumPerStructure, "per-structure-sum")
}

// BenchmarkWorstCase_SectionVI reproduces the instantaneous-bound
// analysis (paper: stressmark 0.797 vs bound 0.899).
func BenchmarkWorstCase_SectionVI(b *testing.B) {
	var sustained, bound float64
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		w, err := ctx.WorstCase(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		sustained, bound = w.Stressmark, w.Breakdown.Value()
	}
	b.ReportMetric(sustained, "sustained-qs")
	b.ReportMetric(bound, "instant-bound")
}

// BenchmarkRunAll regenerates the complete evaluation (all 14
// experiments) on one shared context with a cold cache — the
// cross-experiment sharing case: Fig3/Fig4/Fig6/Fig7, Table III, the
// worst-case, power and root-cause studies all reuse the same
// 33-workload baseline suite and stressmark evaluations.
func BenchmarkRunAll(b *testing.B) {
	var sims int64
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		if _, err := ctx.RunAll(context.Background()); err != nil {
			b.Fatal(err)
		}
		sims = ctx.CacheStats().Simulated
	}
	b.ReportMetric(float64(sims), "sims/run")
}

// BenchmarkRunAllWarm is the second-pass case: a fresh context per
// iteration sharing one pre-warmed store, so every simulation is a memo
// hit and the iteration cost is experiment assembly and rendering only.
// The acceptance target is ≥5x faster than BenchmarkRunAll.
func BenchmarkRunAllWarm(b *testing.B) {
	store := simcache.New(simcache.Options{})
	opts := benchOpts()
	opts.Cache = store
	if _, err := experiments.NewContext(opts).RunAll(context.Background()); err != nil {
		b.Fatal(err)
	}
	warmed := store.Stats().Simulated
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(opts)
		if _, err := ctx.RunAll(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := store.Stats(); st.Simulated != warmed {
		b.Fatalf("warm pass simulated: %d -> %d", warmed, st.Simulated)
	}
	b.ReportMetric(float64(store.Stats().MemHits)/float64(b.N), "hits/run")
}

// BenchmarkInjectCampaign measures a 1000-trial fault-injection
// campaign under checkpointed fork-replay (the timed loop) against the
// same campaign with checkpointing disabled (run once, untimed, for
// the speedup metric). Both modes must render byte-identical reports;
// the acceptance target is ≥5x (DESIGN.md §10).
func BenchmarkInjectCampaign(b *testing.B) {
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	k, _ := experiments.ReferenceKnobs("baseline")
	p, _, err := codegen.Generate(cfg, k, 1<<40)
	if err != nil {
		b.Fatal(err)
	}
	opts := inject.Options{
		Config:  cfg,
		Program: p,
		Run:     pipe.RunConfig{MaxInstructions: 6_000, WarmupInstructions: 2_000},
		Trials:  1000,
		Seed:    1,
	}
	opts.CheckpointInterval = -1
	start := time.Now()
	cold, err := inject.Run(context.Background(), opts)
	if err != nil {
		b.Fatal(err)
	}
	coldDur := time.Since(start)

	opts.CheckpointInterval = 0
	var ckpt *inject.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ckpt, err = inject.Run(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cold.String() != ckpt.String() {
		b.Fatal("checkpointed campaign report differs from cold replay")
	}
	b.ReportMetric(coldDur.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "x-speedup")
	b.ReportMetric(ckpt.AVF, "avf")
}

// BenchmarkInjectCampaignPruned measures a 1000-trial campaign with
// static liveness pruning (the timed loop) against the same campaign
// with pruning disabled (run once, untimed). Pruning must not change
// any replayed outcome: per stratum, the baseline's outcome counts must
// equal the pruned campaign's phase-1 counts, with the pruned targets
// accounting exactly for the baseline's extra masked trials. Reported
// metrics: the pruned fraction of sampled targets and the effective
// trial throughput (analytic prunes included — they are free).
func BenchmarkInjectCampaignPruned(b *testing.B) {
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	k, _ := experiments.ReferenceKnobs("baseline")
	p, _, err := codegen.Generate(cfg, k, 1<<40)
	if err != nil {
		b.Fatal(err)
	}
	opts := inject.Options{
		Config:  cfg,
		Program: p,
		Run:     pipe.RunConfig{MaxInstructions: 6_000, WarmupInstructions: 2_000},
		Trials:  1000,
		Seed:    1,
	}
	opts.PruneStatic = -1
	base, err := inject.Run(context.Background(), opts)
	if err != nil {
		b.Fatal(err)
	}

	opts.PruneStatic = 0
	var pruned *inject.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pruned, err = inject.Run(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if pruned.Pruned == 0 {
		b.Fatal("pruned campaign pruned no targets")
	}
	for i, bs := range base.Structures {
		ps := pruned.Structures[i]
		if bs.SDC != ps.Phase1SDC || bs.Detected != ps.Phase1Detected ||
			bs.Masked != ps.Phase1Masked+ps.Pruned {
			b.Fatalf("%s: baseline outcomes %d/%d/%d != pruned phase-1 %d/%d/%d+%d — pruning changed a replay outcome",
				bs.Structure, bs.SDC, bs.Detected, bs.Masked,
				ps.Phase1SDC, ps.Phase1Detected, ps.Phase1Masked, ps.Pruned)
		}
	}
	b.ReportMetric(float64(pruned.Pruned)/float64(pruned.Trials), "x-prune-frac")
	b.ReportMetric(float64(pruned.Trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	b.ReportMetric(pruned.AVF, "avf")
}

// BenchmarkCodegen measures raw stressmark generation throughput.
func BenchmarkCodegen(b *testing.B) {
	cfg := uarch.Baseline()
	k, _ := experiments.ReferenceKnobs("baseline")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Seed = int64(i)
		if _, _, err := codegen.Generate(cfg, k, 1<<40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures simulator speed in committed
// instructions per wall-second on a mixed workload proxy.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	pf, err := workloads.ByName("403.gcc")
	if err != nil {
		b.Fatal(err)
	}
	p, err := pf.Build(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	const instrs = 100_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Simulate(cfg, p, pipe.RunConfig{MaxInstructions: instrs}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// --- Ablation benchmarks for the design choices DESIGN.md calls out ---

// ablationEval evaluates one knob set under the default fitness.
func ablationEval(b *testing.B, k codegen.Knobs) float64 {
	b.Helper()
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	f, err := core.EvaluateKnobs(context.Background(), cfg, uarch.UniformRates(1), avf.DefaultWeights(), k,
		pipe.RunConfig{MaxInstructions: 100_000, WarmupInstructions: 40_000})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkAblation_L2HitVsMiss contrasts the two generator variants on
// the baseline (the L2-miss shadow is the central AVF mechanism; the
// hit variant trades it for IPC-driven FU/RF stress).
func BenchmarkAblation_L2HitVsMiss(b *testing.B) {
	base, _ := experiments.ReferenceKnobs("baseline")
	hit := base
	hit.L2Hit = true
	var fMiss, fHit float64
	for i := 0; i < b.N; i++ {
		fMiss = ablationEval(b, base)
		fHit = ablationEval(b, hit)
	}
	b.ReportMetric(fMiss, "fitness-miss")
	b.ReportMetric(fHit, "fitness-hit")
}

// BenchmarkAblation_MissDependent sweeps the IQ-occupancy knob
// (instructions dependent on the L2 miss).
func BenchmarkAblation_MissDependent(b *testing.B) {
	base, _ := experiments.ReferenceKnobs("baseline")
	var f0, f7, f16 float64
	for i := 0; i < b.N; i++ {
		k := base
		k.MissDependent = 0
		f0 = ablationEval(b, k)
		k.MissDependent = 7
		f7 = ablationEval(b, k)
		k.MissDependent = 16
		f16 = ablationEval(b, k)
	}
	b.ReportMetric(f0, "fitness-md0")
	b.ReportMetric(f7, "fitness-md7")
	b.ReportMetric(f16, "fitness-md16")
}

// BenchmarkAblation_LoopSize probes the paper's claim that the optimal
// loop size sits near the ROB size (81 for an 80-entry ROB).
func BenchmarkAblation_LoopSize(b *testing.B) {
	base, _ := experiments.ReferenceKnobs("baseline")
	var f40, f81, f96 float64
	for i := 0; i < b.N; i++ {
		k := base
		k.LoopSize = 40
		f40 = ablationEval(b, k)
		k.LoopSize = 81
		f81 = ablationEval(b, k)
		k.LoopSize = 96
		f96 = ablationEval(b, k)
	}
	b.ReportMetric(f40, "fitness-loop40")
	b.ReportMetric(f81, "fitness-loop81")
	b.ReportMetric(f96, "fitness-loop96")
}

// BenchmarkAblation_RegReg probes the register-usage knob's effect on RF
// vulnerability (the persistent-register mechanism).
func BenchmarkAblation_RegReg(b *testing.B) {
	cfg := uarch.Scaled(uarch.Baseline(), 32)
	base, _ := experiments.ReferenceKnobs("baseline")
	var rfLo, rfHi float64
	for i := 0; i < b.N; i++ {
		for _, frac := range []float64{0.0, 0.93} {
			k := base
			k.FracRegReg = frac
			p, _, err := codegen.Generate(cfg, k, 1<<40)
			if err != nil {
				b.Fatal(err)
			}
			res, err := pipe.Simulate(cfg, p, pipe.RunConfig{
				MaxInstructions: 100_000, WarmupInstructions: 40_000,
			})
			if err != nil {
				b.Fatal(err)
			}
			if frac == 0 {
				rfLo = res.AVF[uarch.RF]
			} else {
				rfHi = res.AVF[uarch.RF]
			}
		}
	}
	b.ReportMetric(rfLo*100, "%rf-avf-regreg0")
	b.ReportMetric(rfHi*100, "%rf-avf-regreg93")
}

// BenchmarkPowerContrast regenerates the §IV-B power-vs-AVF study.
func BenchmarkPowerContrast(b *testing.B) {
	var powerKingSER, stressmarkSER float64
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		p, err := ctx.PowerContrast(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		powerKingSER = p.PowerKing().SER
		stressmarkSER = p.AVFKing().SER
	}
	b.ReportMetric(powerKingSER, "powerking-ser")
	b.ReportMetric(stressmarkSER, "stressmark-ser")
}

// benchClusterSpec mirrors the service-layer cluster tests:
// fault-injection campaigns are the only scenario family with leased
// (shardable) jobs, and per-trial granularity maximises them.
const benchClusterSpec = `{"scenarios":["faultinject:baseline:uniform:120","faultinject:baseline:rhc:120"],"mode":"reference","scale":32,"seed":1,"workload_instr":30000,"workload_warmup":8000,"checkpoint_interval":-1}`

// clusterJob submits spec to the daemon at base, waits for it, and
// returns its text report.
func clusterJob(b *testing.B, base, spec string) string {
	b.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		b.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || st.ID == "" {
		b.Fatalf("submit: id %q, err %v", st.ID, err)
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		if time.Now().After(deadline) {
			b.Fatalf("job %s never finished", st.ID)
		}
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			b.Fatal(err)
		}
		var js struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(r.Body).Decode(&js)
		r.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		switch js.Status {
		case "done":
			r, err = http.Get(base + "/v1/results/" + st.ID + "?format=text")
			if err != nil {
				b.Fatal(err)
			}
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				b.Fatalf("results: %s: %s", r.Status, body)
			}
			return string(body)
		case "failed", "canceled":
			b.Fatalf("job %s ended %s: %s", st.ID, js.Status, js.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// BenchmarkClusterCampaign measures the campaign fabric end to end
// (DESIGN.md §13): each timed iteration boots a cold coordinator plus
// three in-process runners and runs a two-scenario fault-injection
// campaign sharded across them; the untimed reference is the same
// campaign on a cold solo daemon. The sharded report must match the
// solo report byte-for-byte. x-speedup is reported, not asserted:
// in-process runners only parallelise where GOMAXPROCS grants real
// cores (the CI container has one).
func BenchmarkClusterCampaign(b *testing.B) {
	// At GOMAXPROCS=1 the campaign compute starves the in-process HTTP
	// handlers — a starvation real multi-process deployments never see
	// (the OS preempts fairly). Widen for the comparison; both the solo
	// reference and the cluster run share the setting.
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		procs = 4
	}
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)

	solo, err := service.New(service.Options{})
	if err != nil {
		b.Fatal(err)
	}
	hsolo := httptest.NewServer(solo)
	start := time.Now()
	want := clusterJob(b, hsolo.URL, benchClusterSpec)
	soloDur := time.Since(start)
	hsolo.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := service.New(service.Options{MaxJobs: 1, Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		hs := httptest.NewServer(srv)
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for r := 1; r <= 3; r++ {
			rn := service.NewRunner(service.RunnerOptions{
				Coordinator: hs.URL, Name: fmt.Sprintf("bench-r%d", r), Workers: 2,
			})
			wg.Add(1)
			go func() { defer wg.Done(); rn.Run(ctx) }()
		}
		joined := time.Now().Add(10 * time.Second)
		for {
			r, err := http.Get(hs.URL + "/v1/healthz")
			if err != nil {
				b.Fatal(err)
			}
			var h struct {
				Cluster struct {
					ConnectedRunners int `json:"connected_runners"`
				} `json:"cluster"`
			}
			err = json.NewDecoder(r.Body).Decode(&h)
			r.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			if h.Cluster.ConnectedRunners >= 3 {
				break
			}
			if time.Now().After(joined) {
				b.Fatal("runners never joined the coordinator")
			}
			time.Sleep(10 * time.Millisecond)
		}
		got := clusterJob(b, hs.URL, benchClusterSpec)
		cancel()
		wg.Wait()
		hs.Close()
		if got != want {
			b.Fatal("sharded campaign report differs from the solo daemon report")
		}
	}
	b.StopTimer()
	b.ReportMetric(soloDur.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "x-speedup")
}
