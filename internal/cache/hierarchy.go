package cache

import "fmt"

// HierarchyConfig assembles the full memory system.
type HierarchyConfig struct {
	IL1, DL1, L2 Config
	DTLB         TLBConfig
	// MemLatency is the L2-miss penalty to main memory, in cycles.
	MemLatency int
}

// Fingerprint returns a canonical description of the whole hierarchy
// geometry for internal/simcache keys.
func (c HierarchyConfig) Fingerprint() string {
	return fmt.Sprintf("mem{il1=%s dl1=%s l2=%s dtlb=%s memlat=%d}",
		c.IL1.Fingerprint(), c.DL1.Fingerprint(), c.L2.Fingerprint(),
		c.DTLB.Fingerprint(), c.MemLatency)
}

// Validate reports the first configuration error.
func (c HierarchyConfig) Validate() error {
	for _, cc := range []Config{c.IL1, c.DL1, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if err := c.DTLB.Validate(); err != nil {
		return err
	}
	if c.MemLatency <= 0 {
		return fmt.Errorf("hierarchy: non-positive memory latency %d", c.MemLatency)
	}
	// The pipeline schedules completion events strictly in the future, so
	// every level must cost at least one cycle.
	for _, cc := range []Config{c.IL1, c.DL1, c.L2} {
		if cc.HitLatency < 1 {
			return fmt.Errorf("hierarchy: %s hit latency %d must be >= 1", cc.Name, cc.HitLatency)
		}
	}
	if c.DL1.LineBytes != c.L2.LineBytes || c.IL1.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("hierarchy: L1/L2 line sizes must match (IL1=%d DL1=%d L2=%d)",
			c.IL1.LineBytes, c.DL1.LineBytes, c.L2.LineBytes)
	}
	// The pipeline's access contract (DESIGN.md §5): 8-byte aligned data
	// accesses, 4-byte aligned fetches, whole-line refills, and DL1 dirty
	// masks applied to the L2. The chunk granules must divide those
	// access sizes for chunk tracking to be lossless.
	if cb := c.DL1.EffectiveChunkBytes(); 8%cb != 0 {
		return fmt.Errorf("hierarchy: DL1 chunk size %d does not divide the 8-byte data access granule", cb)
	}
	if cb := c.IL1.EffectiveChunkBytes(); 4%cb != 0 {
		return fmt.Errorf("hierarchy: IL1 chunk size %d does not divide the 4-byte fetch granule", cb)
	}
	if l2, dl1 := c.L2.EffectiveChunkBytes(), c.DL1.EffectiveChunkBytes(); dl1%l2 != 0 {
		return fmt.Errorf("hierarchy: L2 chunk size %d does not divide the DL1 chunk size %d (writeback masks)", l2, dl1)
	}
	return nil
}

// Hierarchy composes IL1, DL1, a unified writeback L2 and the DTLB, and
// routes accesses through them with cumulative latency accounting.
// Bandwidth between levels is not modelled (accesses are independent);
// the stressmark's pointer chase serialises its L2 misses through the
// register dependence instead, exactly as in the paper.
//
// Each access does one associative lookup per level touched: L1 hits
// resolve in a single Access walk, L1 misses combine the L2
// probe/fill/whole-line read into one ReadLine walk and the L1
// fill+demand touch into one FillTouch, and dirty L1 victims land in
// the L2 via one WriteMask walk.
type Hierarchy struct {
	IL1  *Cache
	DL1  *Cache
	L2   *Cache
	DTLB *TLB
	cfg  HierarchyConfig

	dl1Hit, l2Hit, memLat int64
	lineMask              uint64 // shared L1/L2 line size - 1
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Hierarchy{
		IL1:      MustNew(cfg.IL1),
		DL1:      MustNew(cfg.DL1),
		L2:       MustNew(cfg.L2),
		DTLB:     MustNewTLB(cfg.DTLB),
		cfg:      cfg,
		dl1Hit:   int64(cfg.DL1.HitLatency),
		l2Hit:    int64(cfg.L2.HitLatency),
		memLat:   int64(cfg.MemLatency),
		lineMask: uint64(cfg.L2.LineBytes - 1),
	}, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// Data performs a data access of size bytes at addr issued at time now
// and returns the total latency in cycles (including the DL1 hit
// latency) and whether the access missed DL1 and L2.
func (h *Hierarchy) Data(now int64, addr uint64, size int, write bool) (latency int, dl1Miss, l2Miss bool) {
	t := now + int64(h.DTLB.Access(now, addr))

	if h.DL1.Access(t+h.dl1Hit, addr, size, write) {
		return int(t + h.dl1Hit - now), false, false
	}
	dl1Miss = true
	la := addr &^ h.lineMask
	// DL1 miss: one combined L2 walk — probe, fill on miss, and the
	// whole-line read of the fill data moving up (fill→read or read→read
	// in L2 is ACE).
	if h.L2.ReadLine(t+h.l2Hit, t+h.memLat, la) {
		t += h.l2Hit
	} else {
		l2Miss = true
		t += h.memLat
	}
	// Fill DL1 and apply the demand access, pushing any dirty victim
	// down into L2.
	wb, dirty := h.DL1.FillTouch(t, t+h.dl1Hit, addr, size, write)
	if dirty {
		h.L2.WriteMask(t, wb.Addr, wb.DirtyMask)
	}
	return int(t + h.dl1Hit - now), dl1Miss, l2Miss
}

// Fetch performs an instruction fetch of one line-resident access at pc
// issued at time now and returns the added latency beyond the IL1 hit
// path (0 on an IL1 hit).
func (h *Hierarchy) Fetch(now int64, pc uint64) (extraLatency int) {
	if h.IL1.Access(now, pc, 4, false) {
		return 0
	}
	t := now
	la := pc &^ h.lineMask
	if h.L2.ReadLine(t+h.l2Hit, t+h.memLat, la) {
		t += h.l2Hit
	} else {
		t += h.memLat
	}
	wb, dirty := h.IL1.FillTouch(t, t, pc, 4, false)
	if dirty {
		// Instruction lines are never dirty in this model; defensive.
		h.L2.WriteMask(t, wb.Addr, wb.DirtyMask)
	}
	return int(t - now)
}

// Finalize closes all lifetime intervals at time now.
func (h *Hierarchy) Finalize(now int64) {
	h.IL1.Finalize(now)
	h.DL1.Finalize(now)
	h.L2.Finalize(now)
	h.DTLB.Finalize(now)
}

// ResetACE restarts ACE measurement in all levels at time now.
func (h *Hierarchy) ResetACE(now int64) {
	h.IL1.ResetACE(now)
	h.DL1.ResetACE(now)
	h.L2.ResetACE(now)
	h.DTLB.ResetACE(now)
}

// Reset returns every level to its power-on state without reallocating,
// so one Hierarchy can be reused across simulations of the same
// configuration (see pipe.Pipeline.Reset).
func (h *Hierarchy) Reset() {
	h.IL1.Reset()
	h.DL1.Reset()
	h.L2.Reset()
	h.DTLB.Reset()
}

// ResetStats clears hit/miss counters in all levels.
func (h *Hierarchy) ResetStats() {
	h.IL1.ResetStats()
	h.DL1.ResetStats()
	h.L2.ResetStats()
	h.DTLB.ResetStats()
}
