package scenario

import (
	"fmt"
	"strings"
)

// Spec is the typed, serialisable description of one portfolio request:
// which scenarios to run and under which configuration, fault rates,
// workload suite, search mode and budgets. It is the submission body of
// the avfstressd service (POST /v1/jobs) and the shared currency of the
// CLIs, so a sweep driver can enumerate Specs instead of shelling out
// with ad-hoc flags.
type Spec struct {
	// Scenarios lists the scenario names to run, in order. Empty means
	// the full registered suite in paper order. Besides registered names
	// ("fig3", "table1", ...), four parametric forms are accepted:
	//
	//	stressmark[:<config>:<rates>]            — one stressmark study
	//	workloads[:<config>:<suite>]             — one workload-suite evaluation
	//	faultinject[:<config>:<rates>:<trials>]  — one fault-injection validation
	//	rootcause[:<config>:<rates>:<trials>]    — the same study's root-cause
	//	                                           instruction attribution view
	//
	// The short forms take <config>/<rates>/<suite>/<trials> from the
	// fields below. faultinject and rootcause with equal parameters share
	// one memoised campaign study, so requesting both costs one set of
	// replays.
	Scenarios []string `json:"scenarios,omitempty"`

	// Config selects the microarchitecture for parametric scenarios:
	// "baseline" (default) or "configA".
	Config string `json:"config,omitempty"`
	// Rates selects the fault-rate set for parametric scenarios:
	// "uniform" (default), "rhc" or "edr".
	Rates string `json:"rates,omitempty"`
	// Suite selects the workload suite for the parametric workloads
	// scenario: "specint", "specfp", "mibench" or "all" (default).
	Suite string `json:"suite,omitempty"`
	// Mode selects stressmark provenance: "search" (default; run the
	// GA) or "reference" (the paper's published knobs — fast path).
	Mode string `json:"mode,omitempty"`

	// Scale divides cache/TLB capacities (0 = the harness default).
	Scale int `json:"scale,omitempty"`
	// Seed drives every stochastic component (0 = default).
	Seed int64 `json:"seed,omitempty"`
	// GAPop and GAGens size the stressmark searches (0 = defaults).
	GAPop  int `json:"ga_pop,omitempty"`
	GAGens int `json:"ga_gens,omitempty"`
	// WorkloadInstr/WorkloadWarmup budget each workload simulation.
	WorkloadInstr  int64 `json:"workload_instr,omitempty"`
	WorkloadWarmup int64 `json:"workload_warmup,omitempty"`
	// InjectTrials sizes each Monte Carlo fault-injection campaign of
	// the parametric faultinject and rootcause scenarios (0 = 1000).
	InjectTrials int `json:"inject_trials,omitempty"`
	// CheckpointInterval tunes golden-run checkpoint capture for
	// fault-injection fork-replay: 0 = automatic, >0 = checkpoint every
	// that many measured cycles, <0 = disabled (replays start at cycle
	// zero). A replay-speed knob only — campaign reports are
	// byte-identical at any setting, so it is deliberately absent from
	// all result cache keys.
	CheckpointInterval int64 `json:"checkpoint_interval,omitempty"`
	// PruneStatic toggles static liveness pruning of each campaign's
	// injection space: 0 or >0 = enabled (the default), <0 = disabled.
	// Pruned targets classify as masked analytically and their trial
	// budget moves to the live subspace, so the knob changes which
	// targets replay and how the budget is spent — reports carry a
	// separate pruned outcome column that keeps totals reconciling.
	PruneStatic int `json:"prune_static,omitempty"`
	// Parallelism bounds each concurrency layer — scheduled jobs, and
	// each job's simulations — independently (0 = all cores).
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutSec deadlines the whole request (0 = none).
	TimeoutSec int `json:"timeout_sec,omitempty"`
}

// enum validates a one-of field, treating "" as the default.
func enum(field, v string, allowed ...string) error {
	if v == "" {
		return nil
	}
	for _, a := range allowed {
		if v == a {
			return nil
		}
	}
	return fmt.Errorf("scenario: spec %s %q not one of %s", field, v, strings.Join(allowed, "/"))
}

// Validate checks the spec's enumerated and numeric fields. Scenario
// name resolution is registry-dependent and is checked by the layer
// that owns the registry (internal/experiments).
func (s Spec) Validate() error {
	if err := enum("config", s.Config, "baseline", "configA"); err != nil {
		return err
	}
	if err := enum("rates", s.Rates, "uniform", "rhc", "edr"); err != nil {
		return err
	}
	if err := enum("suite", s.Suite, "specint", "specfp", "mibench", "all"); err != nil {
		return err
	}
	if err := enum("mode", s.Mode, "search", "reference"); err != nil {
		return err
	}
	for _, n := range s.Scenarios {
		if strings.TrimSpace(n) == "" {
			return fmt.Errorf("scenario: spec contains an empty scenario name")
		}
	}
	switch {
	case s.Scale < 0:
		return fmt.Errorf("scenario: spec scale %d negative", s.Scale)
	case s.GAPop < 0 || s.GAGens < 0:
		return fmt.Errorf("scenario: spec GA sizing (%d×%d) negative", s.GAGens, s.GAPop)
	case s.WorkloadInstr < 0 || s.WorkloadWarmup < 0:
		return fmt.Errorf("scenario: spec workload budget negative")
	case s.InjectTrials < 0:
		return fmt.Errorf("scenario: spec inject trials %d negative", s.InjectTrials)
	case s.Parallelism < 0:
		return fmt.Errorf("scenario: spec parallelism %d negative", s.Parallelism)
	case s.TimeoutSec < 0:
		return fmt.Errorf("scenario: spec timeout %ds negative", s.TimeoutSec)
	}
	return nil
}
