package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegValid(t *testing.T) {
	for r := Reg(0); r < NumArchRegs; r++ {
		if !r.Valid() {
			t.Errorf("register %d should be valid", r)
		}
	}
	if Reg(NumArchRegs).Valid() {
		t.Error("register 32 should be invalid")
	}
	if RZero.String() != "zero" {
		t.Errorf("RZero renders as %q", RZero.String())
	}
	if Reg(5).String() != "r5" {
		t.Errorf("r5 renders as %q", Reg(5).String())
	}
}

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op    Op
		arith bool
		mem   bool
	}{
		{OpNop, false, false},
		{OpAdd, true, false},
		{OpMul, true, false},
		{OpLoad, false, true},
		{OpStore, false, true},
		{OpBranch, false, false},
	}
	for _, c := range cases {
		if c.op.IsArith() != c.arith {
			t.Errorf("%v.IsArith() = %v, want %v", c.op, c.op.IsArith(), c.arith)
		}
		if c.op.IsMem() != c.mem {
			t.Errorf("%v.IsMem() = %v, want %v", c.op, c.op.IsMem(), c.mem)
		}
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{
		OpNop: "nop", OpAdd: "addq", OpMul: "mulq",
		OpLoad: "ldq", OpStore: "stq", OpBranch: "br",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d renders as %q, want %q", op, op.String(), s)
		}
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Error("unknown op should render its numeric value")
	}
}

func TestWrites(t *testing.T) {
	cases := []struct {
		in   Instr
		want bool
	}{
		{Instr{Op: OpAdd, Dest: 3}, true},
		{Instr{Op: OpMul, Dest: 4}, true},
		{Instr{Op: OpLoad, Dest: 5}, true},
		{Instr{Op: OpAdd, Dest: RZero}, false}, // writes to r31 are discarded
		{Instr{Op: OpStore, Dest: RZero}, false},
		{Instr{Op: OpBranch, Dest: RZero}, false},
		{Instr{Op: OpNop, Dest: 3}, false},
	}
	for _, c := range cases {
		if got := c.in.Writes(); got != c.want {
			t.Errorf("%v.Writes() = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSrcRegs(t *testing.T) {
	cases := []struct {
		name string
		in   Instr
		want int
	}{
		{"regreg add", Instr{Op: OpAdd, Dest: 3, Src1: 4, Src2: 5, RegReg: true}, 2},
		{"imm add", Instr{Op: OpAdd, Dest: 3, Src1: 4}, 1},
		{"add reading zero", Instr{Op: OpAdd, Dest: 3, Src1: RZero}, 0},
		{"load", Instr{Op: OpLoad, Dest: 3, Src1: 7}, 1},
		{"store", Instr{Op: OpStore, Dest: RZero, Src1: 7, Src2: 8}, 2},
		{"branch", Instr{Op: OpBranch, Dest: RZero, Src1: 2}, 1},
		{"nop", Instr{Op: OpNop}, 0},
	}
	for _, c := range cases {
		got := c.in.SrcRegs(nil)
		if len(got) != c.want {
			t.Errorf("%s: SrcRegs = %v, want %d registers", c.name, got, c.want)
		}
		for _, r := range got {
			if r == RZero {
				t.Errorf("%s: SrcRegs returned the zero register", c.name)
			}
		}
	}
}

func TestValidateRejectsBadInstructions(t *testing.T) {
	bad := []Instr{
		{Op: Op(99)},
		{Op: OpStore, Dest: 3, Src1: 1, Src2: 2}, // store writing a register
		{Op: OpBranch, Dest: 3, Src1: 1},         // branch writing a register
		{Op: OpLoad, Dest: 3, Src1: 1, AddrGen: -1},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate accepted invalid instruction %+v", in)
		}
	}
	good := Instr{Op: OpAdd, Dest: 3, Src1: 4, Imm: 7}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected %v: %v", good, err)
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAdd, Dest: 3, Src1: 4, Src2: 5, RegReg: true}, "addq r4, r5, r3"},
		{Instr{Op: OpAdd, Dest: 3, Src1: 4, Imm: 9}, "addq r4, #9, r3"},
		{Instr{Op: OpLoad, Dest: 3, Src1: 1, AddrGen: 2}, "ldq r3, (r1)[ag2]"},
		{Instr{Op: OpStore, Dest: RZero, Src1: 1, Src2: 6, AddrGen: 0}, "stq r6, (r1)[ag0]"},
		{Instr{Op: OpBranch, Dest: RZero, Src1: 2, BrGen: 1}, "br r2[bg1]"},
		{Instr{Op: OpNop}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// Property: NumSrcRegs is always an upper bound on the true-dependence
// sources returned by SrcRegs, for arbitrary valid instructions.
func TestQuickSrcRegsBound(t *testing.T) {
	f := func(op uint8, d, s1, s2 uint8, regreg bool) bool {
		in := Instr{
			Op:     Op(op % uint8(numOps)),
			Dest:   Reg(d % NumArchRegs),
			Src1:   Reg(s1 % NumArchRegs),
			Src2:   Reg(s2 % NumArchRegs),
			RegReg: regreg,
		}
		return len(in.SrcRegs(nil)) <= in.NumSrcRegs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
