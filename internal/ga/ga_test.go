package ga

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func genes(n int) []Gene {
	gs := make([]Gene, n)
	for i := range gs {
		gs[i] = Gene{Name: "g", Min: 0, Max: 1}
	}
	return gs
}

// sphere is a smooth test objective maximised at the centre (0.5, ...).
func sphere(g Genome) (float64, error) {
	s := 0.0
	for _, v := range g {
		d := v - 0.5
		s += d * d
	}
	return -s, nil
}

func TestValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, sphere); err == nil {
		t.Error("empty gene list accepted")
	}
	if _, err := Run(context.Background(), Config{Genes: []Gene{{Min: 2, Max: 1}}}, sphere); err == nil {
		t.Error("inverted gene range accepted")
	}
	if _, err := Run(context.Background(), Config{Genes: genes(2)}, nil); err == nil {
		t.Error("nil fitness accepted")
	}
}

// expectedEvaluations reconstructs how many fitness calls a (non-island)
// run must have made: the full population in generation 0, then the
// population minus the carried individuals — the elites, or just the
// seeded best after a cataclysm — in every later generation.
func expectedEvaluations(popSize, elites int, history []GenStats) int {
	want := popSize
	for i := 1; i < len(history); i++ {
		if history[i-1].Cataclysm {
			want += popSize - 1
		} else {
			want += popSize - elites
		}
	}
	return want
}

func TestSphereConverges(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Genes: genes(6), PopSize: 40, Generations: 40, Seed: 7,
	}, sphere)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < -0.02 {
		t.Errorf("best fitness %f, want ≥ -0.02 (near the optimum)", res.BestFitness)
	}
	for _, v := range res.Best {
		if math.Abs(v-0.5) > 0.15 {
			t.Errorf("gene %f far from optimum 0.5", v)
		}
	}
	if want := expectedEvaluations(40, 2, res.History); res.Evaluations != want {
		t.Errorf("evaluations = %d, want %d (elite scores carry over)", res.Evaluations, want)
	}
}

// TestElitesAreNotReEvaluated is the regression test for elite score
// carrying: with a deterministic fitness the elites' values are known, so
// a run of G generations must cost Elites×(G-1) fewer evaluations than
// the naive P×G (absent cataclysms), and the count must agree with the
// number of fitness invocations actually observed.
func TestElitesAreNotReEvaluated(t *testing.T) {
	const pop, gens, elites = 12, 10, 3
	calls := 0
	counted := func(g Genome) (float64, error) {
		calls++
		return sphere(g)
	}
	res, err := Run(context.Background(), Config{
		Genes: genes(5), PopSize: pop, Generations: gens, Seed: 21,
		Elites: elites, Parallelism: 1,
	}, counted)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Evaluations {
		t.Errorf("observed %d fitness calls, result reports %d", calls, res.Evaluations)
	}
	if want := expectedEvaluations(pop, elites, res.History); res.Evaluations != want {
		t.Errorf("evaluations = %d, want %d", res.Evaluations, want)
	}
	if res.Evaluations >= pop*gens {
		t.Errorf("evaluations = %d, want fewer than the naive %d", res.Evaluations, pop*gens)
	}
	// The carried scores must be the values the fitness would return:
	// the run's trajectory (and best) matches a second identical run.
	res2, err := Run(context.Background(), Config{
		Genes: genes(5), PopSize: pop, Generations: gens, Seed: 21,
		Elites: elites, Parallelism: 1,
	}, sphere)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness != res2.BestFitness {
		t.Errorf("carry changed the outcome: %f vs %f", res.BestFitness, res2.BestFitness)
	}
	for i, h := range res.History {
		if h != res2.History[i] {
			t.Errorf("generation %d stats diverge: %+v vs %+v", i, h, res2.History[i])
		}
	}
}

func TestOneMaxWithIntegerGenes(t *testing.T) {
	gs := make([]Gene, 10)
	for i := range gs {
		gs[i] = Gene{Min: 0, Max: 1, Integer: true}
	}
	onemax := func(g Genome) (float64, error) {
		s := 0.0
		for _, v := range g {
			s += v
		}
		return s, nil
	}
	res, err := Run(context.Background(), Config{Genes: gs, PopSize: 30, Generations: 30, Seed: 3}, onemax)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < 9.5 {
		t.Errorf("onemax best %f, want 10", res.BestFitness)
	}
}

func TestBestSoFarIsMonotone(t *testing.T) {
	res, err := Run(context.Background(), Config{Genes: genes(4), PopSize: 20, Generations: 25, Seed: 11}, sphere)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(-1)
	for _, h := range res.History {
		if h.Best < best-1e-9 && !h.Cataclysm {
			// Elitism carries the best individual, so the per-generation
			// best never regresses except right after a cataclysm (when
			// the population is re-randomised around the saved best).
			t.Errorf("generation %d best %f regressed below %f", h.Generation, h.Best, best)
		}
		if h.Best > best {
			best = h.Best
		}
	}
	if res.BestFitness < best-1e-9 {
		t.Error("result best is below the history best")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	run := func() *Result {
		r, err := Run(context.Background(), Config{Genes: genes(5), PopSize: 16, Generations: 12, Seed: 99, Parallelism: 4}, sphere)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.BestFitness != b.BestFitness {
		t.Errorf("same seed, different best: %f vs %f", a.BestFitness, b.BestFitness)
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatal("same seed, different genome")
		}
	}
	c, err := Run(context.Background(), Config{Genes: genes(5), PopSize: 16, Generations: 12, Seed: 100}, sphere)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Best {
		if a.Best[i] != c.Best[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical genomes (suspicious)")
	}
}

func TestCataclysmTriggersOnConvergence(t *testing.T) {
	// A constant fitness landscape converges immediately: the spread is 0
	// from generation 0, so a cataclysm must fire after the patience
	// window.
	flat := func(Genome) (float64, error) { return 1, nil }
	res, err := Run(context.Background(), Config{
		Genes: genes(3), PopSize: 10, Generations: 20, Seed: 5,
		CataclysmPatience: 3,
	}, flat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cataclysms == 0 {
		t.Error("no cataclysm on a fully converged population")
	}
	marked := 0
	for _, h := range res.History {
		if h.Cataclysm {
			marked++
		}
	}
	if marked != res.Cataclysms {
		t.Errorf("history marks %d cataclysms, result says %d", marked, res.Cataclysms)
	}
}

func TestCataclysmKeepsBest(t *testing.T) {
	// Even across cataclysms, the returned best must be the best ever.
	calls := 0
	tricky := func(g Genome) (float64, error) {
		calls++
		if calls == 5 {
			return 100, nil // one early lucky individual
		}
		return g[0], nil
	}
	res, err := Run(context.Background(), Config{Genes: genes(2), PopSize: 8, Generations: 10, Seed: 2,
		CataclysmPatience: 2}, tricky)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness != 100 {
		t.Errorf("best-ever lost: %f", res.BestFitness)
	}
}

func TestInitialPopulationSeeding(t *testing.T) {
	seeded := Genome{0.5, 0.5, 0.5}
	res, err := Run(context.Background(), Config{
		Genes: genes(3), PopSize: 6, Generations: 1, Seed: 1,
		InitialPopulation: []Genome{seeded},
	}, sphere)
	if err != nil {
		t.Fatal(err)
	}
	// The seeded genome is the sphere optimum: generation 0 must find it.
	if res.BestFitness != 0 {
		t.Errorf("seeded optimum not evaluated: best %f", res.BestFitness)
	}
}

func TestFitnessErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(context.Background(), Config{Genes: genes(2), PopSize: 4, Generations: 2, Seed: 1},
		func(Genome) (float64, error) { return 0, boom })
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("fitness error lost: %v", err)
	}
}

// Property: mutation and crossover never move genes outside their ranges.
func TestQuickOperatorsRespectBounds(t *testing.T) {
	gs := []Gene{
		{Min: -3, Max: 7, Integer: false},
		{Min: 0, Max: 5, Integer: true},
		{Min: 1, Max: 1, Integer: true}, // degenerate range
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomGenome(gs, rng), randomGenome(gs, rng)
		crossover(a, b, rng)
		mutate(gs, a, 0.8, rng)
		mutate(gs, b, 0.8, rng)
		for _, g := range []Genome{a, b} {
			for i, gene := range gs {
				if g[i] < gene.Min || g[i] > gene.Max {
					return false
				}
				if gene.Integer && g[i] != math.Round(g[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElitesSurviveUnchanged(t *testing.T) {
	cfg := Config{Genes: genes(3), PopSize: 10, Elites: 2, TournamentK: 2}.withDefaults()
	rng := rand.New(rand.NewSource(4))
	pop := make([]Genome, cfg.PopSize)
	scores := make([]float64, cfg.PopSize)
	for i := range pop {
		pop[i] = randomGenome(cfg.Genes, rng)
		scores[i], _ = sphere(pop[i])
	}
	bi := bestIndex(scores)
	carryScore := make([]float64, cfg.PopSize)
	carryKnown := make([]bool, cfg.PopSize)
	next := nextGeneration(cfg, pop, scores, carryScore, carryKnown, rng)
	for i := 0; i < cfg.Elites; i++ {
		if !carryKnown[i] {
			t.Errorf("elite slot %d has no carried score", i)
		}
	}
	found := false
	for _, g := range next[:cfg.Elites] {
		same := true
		for i := range g {
			if g[i] != pop[bi][i] {
				same = false
			}
		}
		if same {
			found = true
		}
	}
	if !found {
		t.Error("best individual not carried into the next generation")
	}
	if len(next) != cfg.PopSize {
		t.Errorf("next generation has %d individuals", len(next))
	}
}

func TestIslandModelConvergesAndMigrates(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Genes: genes(5), PopSize: 24, Generations: 30, Seed: 13,
		Islands: 4, MigrationEvery: 2,
	}, sphere)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < -0.05 {
		t.Errorf("island GA best %f, want near 0", res.BestFitness)
	}
}

func TestIslandBoundsPartition(t *testing.T) {
	cfg := Config{PopSize: 25, Islands: 4}.withDefaults()
	covered := 0
	for i := 0; i < cfg.Islands; i++ {
		s, e := islandBounds(cfg, i)
		if e <= s {
			t.Fatalf("island %d empty [%d,%d)", i, s, e)
		}
		covered += e - s
	}
	if covered != cfg.PopSize {
		t.Errorf("islands cover %d of %d individuals", covered, cfg.PopSize)
	}
}

func TestMigrationMovesBestGenome(t *testing.T) {
	cfg := Config{Genes: genes(1), PopSize: 8, Islands: 2}.withDefaults()
	pop := make([]Genome, 8)
	scores := make([]float64, 8)
	for i := range pop {
		pop[i] = Genome{float64(i) / 10}
		scores[i] = float64(i) // island 0 best = 3, island 1 best = 7
	}
	migrate(cfg, pop, scores, make([]float64, 8), make([]bool, 8))
	// Island 1's worst (index 4) receives island 0's best (genome 0.3);
	// island 0's worst (index 0) receives island 1's best (genome 0.7).
	if pop[4][0] != 0.3 {
		t.Errorf("island 1 worst = %v, want 0.3", pop[4][0])
	}
	if pop[0][0] != 0.7 {
		t.Errorf("island 0 worst = %v, want 0.7", pop[0][0])
	}
}

// TestCancellationStopsWithinOneGeneration: a context cancelled during
// a generation's evaluations must stop the run before the next
// generation begins — at most the remainder of the current population
// is evaluated — and Run must return the context's error.
func TestCancellationStopsWithinOneGeneration(t *testing.T) {
	const pop, gens = 8, 50
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	fit := func(g Genome) (float64, error) {
		if calls.Add(1) == pop+3 { // partway through generation 1
			cancel()
		}
		return sphere(g)
	}
	_, err := Run(ctx, Config{
		Genes: genes(4), PopSize: pop, Generations: gens, Seed: 6, Parallelism: 2,
	}, fit)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Stopped within one generation of the cancellation point: never
	// reaches generation 2's evaluations.
	if n := calls.Load(); n > 2*pop {
		t.Errorf("%d fitness calls after cancelling in generation 1 (bound %d)", n, 2*pop)
	}
}

// TestPreCancelledContextEvaluatesNothing: Run on an already-cancelled
// context returns immediately without touching the fitness function.
func TestPreCancelledContextEvaluatesNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int32
	_, err := Run(ctx, Config{Genes: genes(2), PopSize: 4, Generations: 2, Seed: 1},
		func(g Genome) (float64, error) { calls.Add(1); return sphere(g) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls.Load() != 0 {
		t.Errorf("%d fitness calls on a dead context", calls.Load())
	}
}

// TestLogfStreamsGenerations: the progress callback sees one line per
// generation (with the cataclysm marker) and never alters the search.
func TestLogfStreamsGenerations(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logged, err := Run(context.Background(), Config{
		Genes: genes(3), PopSize: 10, Generations: 12, Seed: 5,
		CataclysmPatience: 3,
		Logf: func(f string, args ...interface{}) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(f, args...))
			mu.Unlock()
		},
	}, func(Genome) (float64, error) { return 1, nil }) // flat → cataclysms
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(logged.History) {
		t.Fatalf("%d log lines for %d generations", len(lines), len(logged.History))
	}
	cataclysms := 0
	for i, l := range lines {
		if !strings.Contains(l, "best") || !strings.Contains(l, "avg") {
			t.Errorf("line %d missing stats: %q", i, l)
		}
		if strings.Contains(l, "cataclysm") {
			cataclysms++
		}
	}
	if cataclysms != logged.Cataclysms {
		t.Errorf("log marks %d cataclysms, result says %d", cataclysms, logged.Cataclysms)
	}
	silent, err := Run(context.Background(), Config{
		Genes: genes(3), PopSize: 10, Generations: 12, Seed: 5,
		CataclysmPatience: 3,
	}, func(Genome) (float64, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if silent.BestFitness != logged.BestFitness || len(silent.History) != len(logged.History) {
		t.Error("logging changed the search trajectory")
	}
}
