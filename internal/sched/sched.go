// Package sched executes a declared job DAG (internal/scenario Jobs) on
// a bounded worker pool. Jobs sharing a Key are deduplicated — the
// combined DAG of many scenarios pays for each shared workload suite or
// stressmark search once — and execution is fully concurrent: a job
// becomes runnable the moment its dependencies complete, bounded only
// by the worker count.
//
// Cancellation is first-class: the context passed to Run is handed to
// every job, the first job error (or the caller's cancellation) stops
// new work from starting, and Run returns once all in-flight jobs have
// drained. Because every job result in this repository is memoised
// content-addressed (internal/simcache), a cancelled run leaves only
// complete, valid entries behind — re-running after a cancellation
// resumes from what finished.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"avfstress/internal/scenario"
)

// Options configures one Run.
type Options struct {
	// Workers bounds concurrently executing jobs (0 = GOMAXPROCS).
	Workers int
	// OnDone, when set, observes every job completion (progress
	// streams). It may be called from multiple goroutines.
	OnDone func(key string, d time.Duration, err error)
}

// node is one deduplicated job in the DAG.
type node struct {
	key        string
	run        func(context.Context) error
	dependents []*node
	pending    int // remaining dependencies (guarded by Run's mutex)
}

// Run executes jobs in dependency order and returns the first error
// (job failure, or ctx cancellation). Jobs with identical Keys are
// executed once — by the declared-jobs purity contract (DESIGN.md §8)
// they describe identical work, so the first declaration wins. On
// error or cancellation, running jobs drain but no new jobs start.
// Job errors are returned unwrapped (keys are dedup identities, not
// display strings), so jobs should return self-describing errors.
func Run(ctx context.Context, jobs []scenario.Job, opts Options) error {
	nodes, err := build(jobs)
	if err != nil {
		return err
	}
	if len(nodes) == 0 {
		return ctx.Err()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, workers)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	var exec func(n *node)
	exec = func(n *node) {
		defer wg.Done()
		sem <- struct{}{}
		start := time.Now()
		err := cctx.Err()
		if err == nil && n.run != nil {
			err = n.run(cctx)
		}
		<-sem
		if err != nil {
			// Job errors are propagated as-is: keys are dedup
			// identities (often fingerprint blobs), not display
			// strings, so jobs must return self-describing errors.
			fail(err)
		}
		if opts.OnDone != nil {
			opts.OnDone(n.key, time.Since(start), err)
		}
		// Release dependents; the last dependency to finish launches
		// each one (even after a failure, so the DAG always drains —
		// released jobs then see the cancelled context and skip work).
		mu.Lock()
		var ready []*node
		for _, d := range n.dependents {
			d.pending--
			if d.pending == 0 {
				ready = append(ready, d)
			}
		}
		mu.Unlock()
		for _, d := range ready {
			wg.Add(1)
			go exec(d)
		}
	}
	mu.Lock()
	var roots []*node
	for _, n := range nodes {
		if n.pending == 0 {
			roots = append(roots, n)
		}
	}
	mu.Unlock()
	for _, n := range roots {
		wg.Add(1)
		go exec(n)
	}
	wg.Wait()

	mu.Lock()
	err = firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// build deduplicates jobs by Key, wires the dependency edges and
// rejects unknown dependencies and cycles.
func build(jobs []scenario.Job) ([]*node, error) {
	byKey := make(map[string]*node, len(jobs))
	deps := make(map[string][]string, len(jobs))
	var nodes []*node
	for _, j := range jobs {
		if j.Key == "" {
			return nil, fmt.Errorf("sched: job with empty key")
		}
		if _, ok := byKey[j.Key]; ok {
			continue // purity contract: identical key ⇒ identical work
		}
		n := &node{key: j.Key, run: j.Run}
		byKey[j.Key] = n
		deps[j.Key] = j.Deps
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		seen := map[string]bool{}
		for _, dk := range deps[n.key] {
			if seen[dk] {
				continue
			}
			seen[dk] = true
			dep, ok := byKey[dk]
			if !ok {
				return nil, fmt.Errorf("sched: job %q depends on unknown job %q", n.key, dk)
			}
			if dep == n {
				return nil, fmt.Errorf("sched: job %q depends on itself", n.key)
			}
			dep.dependents = append(dep.dependents, n)
			n.pending++
		}
	}
	// Kahn's algorithm over a scratch copy of the indegrees: if not
	// every node is reachable from the roots, the remainder is cyclic.
	indeg := make(map[*node]int, len(nodes))
	var queue []*node
	for _, n := range nodes {
		indeg[n] = n.pending
		if n.pending == 0 {
			queue = append(queue, n)
		}
	}
	reached := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		reached++
		for _, d := range n.dependents {
			if indeg[d]--; indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if reached != len(nodes) {
		for _, n := range nodes {
			if indeg[n] > 0 {
				return nil, fmt.Errorf("sched: dependency cycle involving job %q", n.key)
			}
		}
	}
	return nodes, nil
}
