// Command avfstressd serves the experiment portfolio over HTTP: clients
// submit declarative scenario specs, the daemon schedules their
// combined job DAG on a bounded worker pool, and every job shares one
// content-addressed simulation store — concurrent clients requesting
// overlapping scenarios each pay only the marginal simulations.
//
// Usage:
//
//	avfstressd [-addr :8080] [-cache-dir DIR] [-journal FILE] [-scale N]
//	           [-parallelism N] [-max-jobs N] [-max-queue N]
//	           [-retries N] [-job-timeout D] [-drain-timeout D]
//	           [-read-timeout D] [-write-timeout D] [-idle-timeout D]
//	           [-quiet]
//
// API:
//
//	POST   /v1/jobs          submit a scenario.Spec (JSON); returns the job
//	GET    /v1/jobs          list jobs + server-wide cache stats
//	GET    /v1/jobs/{id}     job status (+ ?stream=1: progress stream)
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	GET    /v1/results/{id}  rendered report + stats (+ ?format=text)
//	GET    /v1/healthz       journal/queue/cache health (JSON)
//	GET    /healthz          liveness
//
// The README documents every route with an example curl session.
// Specs may request registered experiments or the parametric
// stressmark / workloads / faultinject scenarios (the latter runs the
// Monte Carlo fault-injection validation, DESIGN.md §9).
//
// With -journal, every accepted submission and terminal outcome is
// durably journalled: a killed daemon restarted on the same journal
// and cache resubmits its unfinished jobs and — because simulation
// results are memoised — reproduces their reports byte-identically
// (DESIGN.md §11). On SIGINT/SIGTERM the daemon drains gracefully:
// new submissions are refused, running jobs get -drain-timeout to
// finish, and whatever is still running resumes after restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"avfstress/internal/sched"
	"avfstress/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cacheDir = flag.String("cache-dir", "", "persist simulation results under this directory (shared across jobs, runs and processes)")
		journal  = flag.String("journal", "", "durable job journal file; on startup unfinished journalled jobs are resubmitted (empty = no journal)")
		scale    = flag.Int("scale", 0, "default cache scale-down factor for jobs that set none (0 = harness default)")
		par      = flag.Int("parallelism", 0, "per-job concurrency bound (0 = all cores)")
		maxJobs  = flag.Int("max-jobs", 0, "concurrently running jobs; excess queue in order (0 = all cores)")
		maxQueue = flag.Int("max-queue", 0, "admitted unfinished jobs; submissions beyond this get 429 (0 = 1024)")
		retries  = flag.Int("retries", 0, "attempts per scheduler job for transient failures; 1 disables retries (0 = server default of 3)")
		jobTO    = flag.Duration("job-timeout", 0, "deadline per scheduler job (simulation/search/render); exceeded deadlines are retried, then fail the job (0 = none)")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM lets running jobs finish before they are suspended for restart")
		readTO   = flag.Duration("read-timeout", 30*time.Second, "HTTP read timeout (0 = none)")
		writeTO  = flag.Duration("write-timeout", 10*time.Minute, "HTTP write timeout; bounds streamed progress too (0 = none)")
		idleTO   = flag.Duration("idle-timeout", 2*time.Minute, "HTTP idle connection timeout (0 = none)")
		quiet    = flag.Bool("quiet", false, "suppress server logging")
	)
	flag.Parse()

	opts := service.Options{
		CacheDir:    *cacheDir,
		JournalPath: *journal,
		Scale:       *scale,
		Parallelism: *par,
		MaxJobs:     *maxJobs,
		MaxQueue:    *maxQueue,
		JobTimeout:  *jobTO,
	}
	if *retries > 0 {
		opts.Retry = sched.RetryPolicy{MaxAttempts: *retries}
	}
	if !*quiet {
		opts.Logf = func(f string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "avfstressd: "+f+"\n", args...)
		}
	}
	srv, err := service.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfstressd:", err)
		os.Exit(1)
	}
	if n := srv.Recovered(); n > 0 {
		fmt.Fprintf(os.Stderr, "avfstressd: resubmitted %d unfinished jobs from %s\n", n, *journal)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfstressd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "avfstressd: listening on http://%s\n", ln.Addr())
	hs := &http.Server{
		Handler:      srv,
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		IdleTimeout:  *idleTO,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "avfstressd:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "avfstressd: %v — draining (up to %v)\n", s, *drainTO)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(ctx); err != nil && err != context.DeadlineExceeded {
		fmt.Fprintln(os.Stderr, "avfstressd: drain:", err)
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	hs.Shutdown(hctx)
}
