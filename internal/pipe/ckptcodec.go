package pipe

// Binary checkpoint codec, so the simcache blob tier can persist the
// checkpoints of a golden run and warm campaigns can fork replays
// without ever re-running the golden simulation. The format is a flat
// little-endian field dump (version-prefixed, no compression): the
// decoder re-validates geometry at Restore time, so the codec only has
// to be self-consistent, not self-describing.
//
// Static-instruction pointers are encoded as indices into the bound
// program (body i ≥ 0, init -(i+1)); pointers that resolve to neither —
// dead ROB slots still holding uops from a previous pooled program —
// encode as a nil sentinel, which is sound because dead slots are never
// read before being fully overwritten by dispatch (only their
// generation counters matter, and those are preserved exactly).

import (
	"errors"
	"fmt"
	"math"

	"avfstress/internal/cache"
	"avfstress/internal/isa"
	"avfstress/internal/prog"
)

const (
	ckptMagic = uint32(0x6b637661) // "avck", little-endian
	// ckptVersion gates checkpoint-blob decoding; v2 added the per-uop
	// dynamic stream sequence number (first-divergent-commit capture).
	// Older cached blobs fail decode and the campaign falls back to
	// replaying the affected buckets from cycle zero.
	ckptVersion = byte(2)
	staticNil   = int32(math.MinInt32)
)

type ckptEnc struct{ b []byte }

func (e *ckptEnc) u8(v byte)    { e.b = append(e.b, v) }
func (e *ckptEnc) u16(v uint16) { e.b = append(e.b, byte(v), byte(v>>8)) }
func (e *ckptEnc) u32(v uint32) { e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (e *ckptEnc) u64(v uint64) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (e *ckptEnc) i16(v int16) { e.u16(uint16(v)) }
func (e *ckptEnc) i32(v int32) { e.u32(uint32(v)) }
func (e *ckptEnc) i64(v int64) { e.u64(uint64(v)) }
func (e *ckptEnc) flag(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *ckptEnc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *ckptEnc) bytes(s []byte) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *ckptEnc) u16s(s []uint16) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.u16(v)
	}
}
func (e *ckptEnc) i16s(s []int16) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.i16(v)
	}
}
func (e *ckptEnc) i32s(s []int32) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.i32(v)
	}
}
func (e *ckptEnc) i64s(s []int64) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.i64(v)
	}
}
func (e *ckptEnc) u64s(s []uint64) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.u64(v)
	}
}
func (e *ckptEnc) bools(s []bool) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.flag(v)
	}
}

// ckptDec decodes with a sticky error: after the first failure every
// read returns zero values, so call sites skip per-field checks.
type ckptDec struct {
	b   []byte
	off int
	err error
}

func (d *ckptDec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("pipe: checkpoint decode: %s at offset %d", msg, d.off)
	}
}

func (d *ckptDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("truncated")
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *ckptDec) u8() byte {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}
func (d *ckptDec) u16() uint16 {
	s := d.take(2)
	if s == nil {
		return 0
	}
	return uint16(s[0]) | uint16(s[1])<<8
}
func (d *ckptDec) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24
}
func (d *ckptDec) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
		uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
}
func (d *ckptDec) i16() int16 { return int16(d.u16()) }
func (d *ckptDec) i32() int32 { return int32(d.u32()) }
func (d *ckptDec) i64() int64 { return int64(d.u64()) }
func (d *ckptDec) flag() bool { return d.u8() != 0 }

// count reads a length prefix, refusing counts that cannot fit in the
// remaining input (elemSize bytes per element) — the allocation guard.
func (d *ckptDec) count(elemSize int) int {
	n := int(d.u32())
	if d.err == nil && n*elemSize > len(d.b)-d.off {
		d.fail("length prefix exceeds input")
		return 0
	}
	return n
}

func (d *ckptDec) str() string { return string(d.take(d.count(1))) }
func (d *ckptDec) bytesv() []byte {
	s := d.take(d.count(1))
	if s == nil {
		return nil
	}
	return append([]byte(nil), s...)
}
func (d *ckptDec) u16s() []uint16 {
	n := d.count(2)
	if d.err != nil {
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = d.u16()
	}
	return out
}
func (d *ckptDec) i16s() []int16 {
	n := d.count(2)
	if d.err != nil {
		return nil
	}
	out := make([]int16, n)
	for i := range out {
		out[i] = d.i16()
	}
	return out
}
func (d *ckptDec) i32s() []int32 {
	n := d.count(4)
	if d.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = d.i32()
	}
	return out
}
func (d *ckptDec) i64s() []int64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.i64()
	}
	return out
}
func (d *ckptDec) u64s() []uint64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.u64()
	}
	return out
}
func (d *ckptDec) bools() []bool {
	n := d.count(1)
	if d.err != nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.flag()
	}
	return out
}

// staticIndex maps a program's static-instruction addresses to codec
// indices (body i ≥ 0, init -(i+1)).
func staticIndex(p *prog.Program) map[*isa.Instr]int32 {
	m := make(map[*isa.Instr]int32, len(p.Init)+len(p.Body))
	for i := range p.Init {
		m[&p.Init[i]] = -int32(i) - 1
	}
	for i := range p.Body {
		m[&p.Body[i]] = int32(i)
	}
	return m
}

func encStatic(e *ckptEnc, m map[*isa.Instr]int32, in *isa.Instr) {
	if in == nil {
		e.i32(staticNil)
		return
	}
	if idx, ok := m[in]; ok {
		e.i32(idx)
		return
	}
	e.i32(staticNil) // stale pointer from a previous pooled program
}

func decStatic(d *ckptDec, p *prog.Program) *isa.Instr {
	idx := d.i32()
	switch {
	case d.err != nil || idx == staticNil:
		return nil
	case idx >= 0:
		if int(idx) >= len(p.Body) {
			d.fail("static body index out of range")
			return nil
		}
		return &p.Body[idx]
	default:
		j := int(-idx - 1)
		if j >= len(p.Init) {
			d.fail("static init index out of range")
			return nil
		}
		return &p.Init[j]
	}
}

func encUopBody(e *ckptEnc, m map[*isa.Instr]int32, u *uop) {
	encStatic(e, m, u.static)
	e.u64(u.addr)
	e.i64(u.dynSeq)
	e.i64(u.dispatchCycle)
	e.i64(u.issueCycle)
	e.i64(u.doneCycle)
	e.i64(u.dataReady)
	e.i64(u.execLatency)
	e.i16(u.destPhys)
	e.i16(u.oldPhys)
	e.i16(u.src[0])
	e.i16(u.src[1])
	e.u8(byte(u.opc))
	e.u8(byte(u.state))
	e.u8(u.pendingSrcs)
	var f uint8
	if u.wrongPath {
		f |= 1 << 0
	}
	if u.ace {
		f |= 1 << 1
	}
	if u.inIQ {
		f |= 1 << 2
	}
	if u.inLQ {
		f |= 1 << 3
	}
	if u.inSQ {
		f |= 1 << 4
	}
	if u.forwarded {
		f |= 1 << 5
	}
	if u.predTaken {
		f |= 1 << 6
	}
	if u.mispred {
		f |= 1 << 7
	}
	e.u8(f)
}

func decUopBody(d *ckptDec, p *prog.Program, u *uop) {
	u.static = decStatic(d, p)
	u.addr = d.u64()
	u.dynSeq = d.i64()
	u.dispatchCycle = d.i64()
	u.issueCycle = d.i64()
	u.doneCycle = d.i64()
	u.dataReady = d.i64()
	u.execLatency = d.i64()
	u.destPhys = d.i16()
	u.oldPhys = d.i16()
	u.src[0] = d.i16()
	u.src[1] = d.i16()
	u.opc = isa.Op(d.u8())
	u.state = uopState(d.u8())
	u.pendingSrcs = d.u8()
	f := d.u8()
	u.wrongPath = f&(1<<0) != 0
	u.ace = f&(1<<1) != 0
	u.inIQ = f&(1<<2) != 0
	u.inLQ = f&(1<<3) != 0
	u.inSQ = f&(1<<4) != 0
	u.forwarded = f&(1<<5) != 0
	u.predTaken = f&(1<<6) != 0
	u.mispred = f&(1<<7) != 0
}

func encEvents(e *ckptEnc, es []event) {
	e.u32(uint32(len(es)))
	for _, ev := range es {
		e.i64(ev.cycle)
		e.i64(ev.seq)
		e.u32(ev.gen)
	}
}

func decEvents(d *ckptDec) []event {
	n := d.count(20)
	if d.err != nil {
		return nil
	}
	out := make([]event, n)
	for i := range out {
		out[i] = event{cycle: d.i64(), seq: d.i64(), gen: d.u32()}
	}
	return out
}

func encRefLists(e *ckptEnc, ls []ckptRefList) {
	e.u32(uint32(len(ls)))
	for _, l := range ls {
		e.i32(l.idx)
		e.u32(uint32(len(l.refs)))
		for _, r := range l.refs {
			e.i64(r.seq)
			e.u32(r.gen)
		}
	}
}

func decRefLists(d *ckptDec) []ckptRefList {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]ckptRefList, 0, n)
	for i := 0; i < n; i++ {
		l := ckptRefList{idx: d.i32()}
		m := d.count(12)
		if d.err != nil {
			return nil
		}
		l.refs = make([]ckptRef, m)
		for j := range l.refs {
			l.refs[j] = ckptRef{seq: d.i64(), gen: d.u32()}
		}
		out = append(out, l)
	}
	return out
}

func encCacheState(e *ckptEnc, st *cache.CacheState) {
	e.u64s(st.Tag)
	e.bools(st.Valid)
	e.i64s(st.LRU)
	e.i64s(st.FillTime)
	e.i64s(st.LastAceEnd)
	e.u64s(st.Dirty)
	e.bytes(st.ChunkState)
	e.i64s(st.ChunkTime)
	e.u64(st.AceChunkCycles)
	e.u64(st.TagAceCycles)
	e.i64(st.WindowStart)
	e.u64(st.Accesses)
	e.u64(st.Misses)
	e.u64(st.Writebacks)
	e.u64(st.WritebackAccesses)
	e.u64(st.WritebackMisses)
}

func decCacheState(d *ckptDec, st *cache.CacheState) {
	st.Tag = d.u64s()
	st.Valid = d.bools()
	st.LRU = d.i64s()
	st.FillTime = d.i64s()
	st.LastAceEnd = d.i64s()
	st.Dirty = d.u64s()
	st.ChunkState = d.bytesv()
	st.ChunkTime = d.i64s()
	st.AceChunkCycles = d.u64()
	st.TagAceCycles = d.u64()
	st.WindowStart = d.i64()
	st.Accesses = d.u64()
	st.Misses = d.u64()
	st.Writebacks = d.u64()
	st.WritebackAccesses = d.u64()
	st.WritebackMisses = d.u64()
}

func encTLBState(e *ckptEnc, st *cache.TLBState) {
	e.u64s(st.VPN)
	e.bools(st.Valid)
	e.i64s(st.FillTime)
	e.i64s(st.LastRead)
	e.i64s(st.LRU)
	e.u64s(st.HD1Cycles)
	e.i64s(st.HD1Since)
	e.i32s(st.HD1Count)
	e.u64(st.AceEntryCycles)
	e.u64(st.HD1EntryCycles)
	e.i64(st.WindowStart)
	e.u64(st.Accesses)
	e.u64(st.Misses)
}

func decTLBState(d *ckptDec, st *cache.TLBState) {
	st.VPN = d.u64s()
	st.Valid = d.bools()
	st.FillTime = d.i64s()
	st.LastRead = d.i64s()
	st.LRU = d.i64s()
	st.HD1Cycles = d.u64s()
	st.HD1Since = d.i64s()
	st.HD1Count = d.i32s()
	st.AceEntryCycles = d.u64()
	st.HD1EntryCycles = d.u64()
	st.WindowStart = d.i64()
	st.Accesses = d.u64()
	st.Misses = d.u64()
}

// MarshalBinary serialises the checkpoint. The bound program is not
// embedded — UnmarshalCheckpoint rebinds it, verifying the embedded
// program fingerprint.
func (ck *Checkpoint) MarshalBinary() ([]byte, error) {
	if ck.prog == nil {
		return nil, errors.New("pipe: cannot marshal checkpoint with no program bound")
	}
	m := staticIndex(ck.prog)
	e := &ckptEnc{b: make([]byte, 0, 64<<10)}
	e.u32(ckptMagic)
	e.u8(ckptVersion)
	e.str(ck.cfgFP)
	e.str(ck.progFP)

	e.i64(ck.cycle)
	e.i64(ck.head)
	e.i64(ck.tail)
	e.i32(int32(ck.iqUsed))
	e.i32(int32(ck.lqUsed))
	e.i32(int32(ck.sqUsed))
	e.i64(ck.fetchStallUntil)
	e.i32(int32(ck.wpIdx))
	var f uint8
	if ck.wrongPathMode {
		f |= 1 << 0
	}
	if ck.havePending {
		f |= 1 << 1
	}
	if ck.streamDone {
		f |= 1 << 2
	}
	e.u8(f)
	e.i64(ck.lastCommit)
	e.u64(ck.digest)

	encStatic(e, m, ck.pending.dyn.Static)
	e.i64(ck.pending.dyn.Seq)
	e.i64(ck.pending.dyn.Iter)
	e.u64(ck.pending.dyn.PC)
	e.u64(ck.pending.dyn.Addr)
	e.flag(ck.pending.dyn.Taken)
	e.flag(ck.pending.wrongPath)

	a := &ck.acct
	e.flag(a.measuring)
	for _, v := range []int64{a.windowStart, a.warmupLeft, a.warmupDone,
		a.committed, a.aceCommitted, a.loads, a.stores, a.branches, a.longArith,
		a.fetched, a.wrongPathFetched, a.branchesFetched, a.mispredicts, a.flushed,
		a.issuedALU, a.issuedMul, a.issuedMem, a.issuedBr,
		a.iqAce, a.robAce, a.lqTagAce, a.lqDataAce, a.sqTagAce, a.sqDataAce,
		a.fuStage, a.rfRegCyc, a.occROB, a.occIQ, a.occLQ, a.occSQ} {
		e.i64(v)
	}

	// ROB ring: generation counters for every slot (dead slots' gens are
	// live state — dispatch increments them and event references compare
	// against them), full bodies only for the in-flight window.
	e.u32(uint32(len(ck.rob)))
	for i := range ck.rob {
		e.u32(ck.rob[i].gen)
	}
	mask := int64(len(ck.rob) - 1)
	for seq := ck.head; seq < ck.tail; seq++ {
		encUopBody(e, m, &ck.rob[seq&mask])
	}
	// Rename-map checkpoint rows, likewise window-only (rows are written
	// at dispatch and only read while their branch is in flight).
	for seq := ck.head; seq < ck.tail; seq++ {
		i := seq & mask
		for _, v := range ck.ckpt[i*int64(isa.NumArchRegs) : (i+1)*int64(isa.NumArchRegs)] {
			e.i16(v)
		}
	}

	e.i16s(ck.archMap)
	e.i16s(ck.freeList)
	e.u32(uint32(len(ck.regs)))
	for i := range ck.regs {
		r := &ck.regs[i]
		e.i64(r.readyCycle)
		e.i64(r.writeTime)
		e.i64(r.lastRead)
		var rf uint8
		if r.written {
			rf |= 1 << 0
		}
		if r.aceValue {
			rf |= 1 << 1
		}
		e.u8(rf)
	}

	e.i64(ck.wheelHead)
	encEvents(e, ck.wheelEvents)
	encEvents(e, ck.wheelDue)

	e.u64s(ck.readyWords)
	e.i32(int32(ck.readyCount))
	encRefLists(e, ck.waiters)
	encRefLists(e, ck.blocked)

	e.u64s(ck.dwKeys)
	for i, k := range ck.dwKeys {
		if k != dwEmpty && k != dwTombstone {
			e.i64s(ck.dwVals[i])
		}
	}
	e.i32(int32(ck.dwLive))
	e.i32(int32(ck.dwUsed))

	e.flag(ck.stream.InInit)
	e.i64(int64(ck.stream.Idx))
	e.i64(ck.stream.Iter)
	e.i64(ck.stream.Seq)

	e.bytes(ck.bp.Global)
	e.bytes(ck.bp.Choice)
	e.u16s(ck.bp.LocalH)
	e.bytes(ck.bp.LocalC)
	e.u64(ck.bp.GHist)
	e.u64(ck.bp.Lookups)
	e.u64(ck.bp.Mispredicts)

	encCacheState(e, &ck.mem.IL1)
	encCacheState(e, &ck.mem.DL1)
	encCacheState(e, &ck.mem.L2)
	encTLBState(e, &ck.mem.DTLB)
	return e.b, nil
}

// UnmarshalCheckpoint decodes a checkpoint and binds it to program p,
// which must be the program the checkpoint was captured from (verified
// by fingerprint). The returned checkpoint restores exactly like the
// in-memory original (TestCheckpointCodecRoundTrip).
func UnmarshalCheckpoint(data []byte, p *prog.Program) (*Checkpoint, error) {
	d := &ckptDec{b: data}
	if d.u32() != ckptMagic {
		return nil, errors.New("pipe: not a checkpoint blob")
	}
	if v := d.u8(); d.err == nil && v != ckptVersion {
		return nil, fmt.Errorf("pipe: checkpoint version %d unsupported", v)
	}
	ck := &Checkpoint{prog: p}
	ck.cfgFP = d.str()
	ck.progFP = d.str()
	if d.err == nil && ck.progFP != p.Fingerprint() {
		return nil, errors.New("pipe: checkpoint program mismatch")
	}

	ck.cycle = d.i64()
	ck.head = d.i64()
	ck.tail = d.i64()
	ck.iqUsed = int(d.i32())
	ck.lqUsed = int(d.i32())
	ck.sqUsed = int(d.i32())
	ck.fetchStallUntil = d.i64()
	ck.wpIdx = int(d.i32())
	f := d.u8()
	ck.wrongPathMode = f&(1<<0) != 0
	ck.havePending = f&(1<<1) != 0
	ck.streamDone = f&(1<<2) != 0
	ck.lastCommit = d.i64()
	ck.digest = d.u64()

	ck.pending.dyn.Static = decStatic(d, p)
	ck.pending.dyn.Seq = d.i64()
	ck.pending.dyn.Iter = d.i64()
	ck.pending.dyn.PC = d.u64()
	ck.pending.dyn.Addr = d.u64()
	ck.pending.dyn.Taken = d.flag()
	ck.pending.wrongPath = d.flag()

	a := &ck.acct
	a.measuring = d.flag()
	for _, dst := range []*int64{&a.windowStart, &a.warmupLeft, &a.warmupDone,
		&a.committed, &a.aceCommitted, &a.loads, &a.stores, &a.branches, &a.longArith,
		&a.fetched, &a.wrongPathFetched, &a.branchesFetched, &a.mispredicts, &a.flushed,
		&a.issuedALU, &a.issuedMul, &a.issuedMem, &a.issuedBr,
		&a.iqAce, &a.robAce, &a.lqTagAce, &a.lqDataAce, &a.sqTagAce, &a.sqDataAce,
		&a.fuStage, &a.rfRegCyc, &a.occROB, &a.occIQ, &a.occLQ, &a.occSQ} {
		*dst = d.i64()
	}

	ring := d.count(4)
	if d.err == nil && (ring == 0 || ring&(ring-1) != 0) {
		d.fail("ROB ring size not a power of two")
	}
	if d.err != nil {
		return nil, d.err
	}
	ck.rob = make([]uop, ring)
	for i := range ck.rob {
		ck.rob[i].gen = d.u32()
	}
	mask := int64(ring - 1)
	if w := ck.tail - ck.head; w < 0 || w > int64(ring) {
		d.fail("in-flight window exceeds ring")
	}
	if d.err != nil {
		return nil, d.err
	}
	for seq := ck.head; seq < ck.tail; seq++ {
		decUopBody(d, p, &ck.rob[seq&mask])
	}
	ck.ckpt = make([]int16, ring*isa.NumArchRegs)
	for seq := ck.head; seq < ck.tail; seq++ {
		i := seq & mask
		row := ck.ckpt[i*int64(isa.NumArchRegs) : (i+1)*int64(isa.NumArchRegs)]
		for j := range row {
			row[j] = d.i16()
		}
	}

	ck.archMap = d.i16s()
	ck.freeList = d.i16s()
	nregs := d.count(25)
	if d.err != nil {
		return nil, d.err
	}
	ck.regs = make([]physReg, nregs)
	for i := range ck.regs {
		r := &ck.regs[i]
		r.readyCycle = d.i64()
		r.writeTime = d.i64()
		r.lastRead = d.i64()
		rf := d.u8()
		r.written = rf&(1<<0) != 0
		r.aceValue = rf&(1<<1) != 0
	}

	ck.wheelHead = d.i64()
	ck.wheelEvents = decEvents(d)
	ck.wheelDue = decEvents(d)

	ck.readyWords = d.u64s()
	ck.readyCount = int(d.i32())
	ck.waiters = decRefLists(d)
	ck.blocked = decRefLists(d)

	ck.dwKeys = d.u64s()
	ck.dwVals = make([][]int64, len(ck.dwKeys))
	for i, k := range ck.dwKeys {
		if k != dwEmpty && k != dwTombstone {
			ck.dwVals[i] = d.i64s()
		}
	}
	ck.dwLive = int(d.i32())
	ck.dwUsed = int(d.i32())

	ck.stream.InInit = d.flag()
	ck.stream.Idx = int(d.i64())
	ck.stream.Iter = d.i64()
	ck.stream.Seq = d.i64()

	ck.bp.Global = d.bytesv()
	ck.bp.Choice = d.bytesv()
	ck.bp.LocalH = d.u16s()
	ck.bp.LocalC = d.bytesv()
	ck.bp.GHist = d.u64()
	ck.bp.Lookups = d.u64()
	ck.bp.Mispredicts = d.u64()

	decCacheState(d, &ck.mem.IL1)
	decCacheState(d, &ck.mem.DL1)
	decCacheState(d, &ck.mem.L2)
	decTLBState(d, &ck.mem.DTLB)

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("pipe: checkpoint decode: %d trailing bytes", len(d.b)-d.off)
	}
	return ck, nil
}
