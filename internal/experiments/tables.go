package experiments

import (
	"context"
	"fmt"
	"strings"

	"avfstress/internal/analysis"
	"avfstress/internal/avf"
	"avfstress/internal/report"
	"avfstress/internal/uarch"
)

// ConfigTable renders Table I (Baseline) or Table II (Configuration A).
func ConfigTable(cfg uarch.Config) string {
	t := &report.Table{Title: fmt.Sprintf("Configuration %s", cfg.Name),
		Headers: []string{"parameter", "value"}}
	c := cfg.Core
	t.AddRow("Integer ALUs", fmt.Sprintf("%d, %d cycle latency, %d bit wide", c.NumALUs, c.ALULatency, c.RegBits))
	t.AddRow("Integer Multiplier", fmt.Sprintf("%d, %d cycle latency", c.NumMuls, c.MulLatency))
	t.AddRow("Fetch/slot/map/issue/commit", fmt.Sprintf("%d/%d/%d/%d/%d per cycle",
		c.FetchWidth, c.MapWidth, c.MapWidth, c.IssueWidth, c.CommitWidth))
	t.AddRow("Memory issues per cycle", c.MemIssuePerCycle)
	t.AddRow("Integer Issue Queue", fmt.Sprintf("%d entries, %d bits/entry", c.IQEntries, c.IQEntryBits))
	t.AddRow("ROB", fmt.Sprintf("%d entries, %d bits/entry", c.ROBEntries, c.ROBEntryBits))
	t.AddRow("Integer rename register file", fmt.Sprintf("%d, %d bits/register", c.PhysRegs, c.RegBits))
	t.AddRow("LQ/SQ", fmt.Sprintf("%d/%d entries, %d bits/entry", c.LQEntries, c.SQEntries, c.LSQEntryBits))
	t.AddRow("Branch Misprediction Penalty", fmt.Sprintf("%d cycles", c.MispredictPenalty))
	m := cfg.Mem
	t.AddRow("L1 I-cache", fmt.Sprintf("%dkB, %d-way, %dB line, %d cycle",
		m.IL1.SizeBytes>>10, m.IL1.Ways, m.IL1.LineBytes, m.IL1.HitLatency))
	t.AddRow("L1 D-cache", fmt.Sprintf("%dkB, %d-way, %dB line, %d cycle",
		m.DL1.SizeBytes>>10, m.DL1.Ways, m.DL1.LineBytes, m.DL1.HitLatency))
	t.AddRow("DTLB", fmt.Sprintf("%d entry, fully associative, %dkB page",
		m.DTLB.Entries, m.DTLB.PageBytes>>10))
	t.AddRow("L2 cache", fmt.Sprintf("%dkB, %d-way, %d cycle latency",
		m.L2.SizeBytes>>10, m.L2.Ways, m.L2.HitLatency))
	t.AddRow("Memory latency", fmt.Sprintf("%d cycles", m.MemLatency))
	return t.String()
}

// Table3Row is one row of the paper's Table III.
type Table3Row struct {
	Config          string
	Stressmark      float64
	BestProgram     string
	BestProgramSER  float64
	SumPerStructure float64
	SumRawRates     float64
}

// Table3Result compares the worst-case-SER estimation methodologies in
// the core (QS+RF) under the three fault-rate sets.
type Table3Result struct {
	Rows []Table3Row
}

// String renders the Table3Result as its paper-style report.
func (t *Table3Result) String() string {
	tb := &report.Table{
		Title:   "Table III — worst-case core SER estimation methodologies (units/bit)",
		Headers: []string{"configuration", "stressmark", "best individual program", "sum of highest per-structure", "sum of raw rates"},
	}
	for _, r := range t.Rows {
		tb.AddRow(r.Config, r.Stressmark,
			fmt.Sprintf("%.3f (%s)", r.BestProgramSER, r.BestProgram),
			r.SumPerStructure, r.SumRawRates)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nper-structure-max composes states no one program realises; raw rates ignore masking entirely.\n")
	return b.String()
}

// Table3 reproduces Table III for the Baseline, RHC and EDR rate sets.
func (c *Context) Table3(ctx context.Context) (*Table3Result, error) {
	cfg := c.Baseline
	all, err := c.Workloads(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := &Table3Result{}
	for _, rs := range []struct {
		name, key string
		rates     uarch.FaultRates
	}{
		{"Baseline", "baseline", uarch.UniformRates(1)},
		{"RHC", "rhc", uarch.RHCRates()},
		{"EDR", "edr", uarch.EDRRates()},
	} {
		sm, err := c.Stressmark(ctx, rs.key, cfg, rs.rates)
		if err != nil {
			return nil, err
		}
		best, bestSER := analysis.Best(all, cfg, rs.rates, avf.ClassQSRF)
		out.Rows = append(out.Rows, Table3Row{
			Config:          rs.name,
			Stressmark:      sm.Result.SER(cfg, rs.rates, avf.ClassQSRF),
			BestProgram:     best.Workload,
			BestProgramSER:  bestSER,
			SumPerStructure: analysis.SumOfHighestPerStructure(all, cfg, rs.rates, avf.ClassQSRF),
			SumRawRates:     analysis.SumOfRawRates(cfg, rs.rates, avf.ClassQSRF),
		})
	}
	return out, nil
}

// WorstCaseResult is the §VI analysis: the instantaneous occupancy bound
// against the stressmark's sustained SER (0.899 vs 0.797 in the paper).
type WorstCaseResult struct {
	Breakdown  analysis.WorstCaseBreakdown
	Stressmark float64 // sustained QS SER of the stressmark
	Coverage   []analysis.Coverage
}

// String renders the WorstCaseResult as its paper-style report.
func (w *WorstCaseResult) String() string {
	var b strings.Builder
	b.WriteString("§VI analysis — instantaneous bound vs sustained stressmark (QS)\n\n")
	fmt.Fprintf(&b, "  %s\n", w.Breakdown)
	fmt.Fprintf(&b, "  stressmark sustained QS SER: %.3f units/bit (%.0f%% of the unsustainable bound)\n\n",
		w.Stressmark, 100*w.Stressmark/w.Breakdown.Value())
	b.WriteString("workload-suite SER coverage (Figure 1 discussion):\n")
	for _, cov := range w.Coverage {
		b.WriteString("  " + cov.String())
	}
	return b.String()
}

// WorstCase reproduces the §VI back-of-the-envelope check and the
// coverage analysis of the workload suite.
func (c *Context) WorstCase(ctx context.Context) (*WorstCaseResult, error) {
	cfg := c.Baseline
	rates := uarch.UniformRates(1)
	sm, err := c.Stressmark(ctx, "baseline", cfg, rates)
	if err != nil {
		return nil, err
	}
	all, err := c.Workloads(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := &WorstCaseResult{
		Breakdown:  analysis.InstantaneousWorstCase(cfg),
		Stressmark: sm.Result.SER(cfg, rates, avf.ClassQS),
	}
	for _, cl := range avf.AllClasses() {
		out.Coverage = append(out.Coverage,
			analysis.SuiteCoverage(all, cfg, rates, cl, sm.Result.SER(cfg, rates, cl)))
	}
	return out, nil
}
