// Package isa defines the synthetic Alpha-flavoured integer instruction
// set used by the stressmark code generator, the workload synthesiser and
// the out-of-order pipeline model.
//
// The paper's code generator emits "C with embedded Alpha assembly"; this
// package is the Go equivalent of that target language. Only the integer
// pipeline is modelled (the paper restricts its evaluation to the integer
// pipeline for parity with SPEC CPU2006 integer results).
package isa

import "fmt"

// Reg identifies one of the 32 architected integer registers. R31 reads
// as zero and writes to it are discarded, mirroring the Alpha convention.
type Reg uint8

// Architected register file size.
const (
	NumArchRegs = 32
	// RZero always reads zero; writing it is a no-op (Alpha r31).
	RZero Reg = 31
)

// Valid reports whether r names an architected register.
func (r Reg) Valid() bool { return r < NumArchRegs }

// String renders the register name ("r4", "zero").
func (r Reg) String() string {
	if r == RZero {
		return "zero"
	}
	return fmt.Sprintf("r%d", r)
}

// Op enumerates the instruction classes of the synthetic ISA. The classes
// map one-to-one onto the functional units and queues whose occupancy the
// paper's knobs control.
type Op uint8

const (
	// OpNop is an un-ACE filler instruction (compiler alignment NOPs in
	// the paper's taxonomy). It occupies fetch/ROB slots but never
	// contributes ACE bits.
	OpNop Op = iota
	// OpAdd is a short-latency ALU operation (1 cycle on the baseline).
	OpAdd
	// OpMul is a long-latency arithmetic operation (7 cycles on the
	// baseline, single multiplier).
	OpMul
	// OpLoad is a 64-bit integer load.
	OpLoad
	// OpStore is a 64-bit integer store.
	OpStore
	// OpBranch is a conditional branch.
	OpBranch

	numOps
)

var opNames = [numOps]string{"nop", "addq", "mulq", "ldq", "stq", "br"}

// String renders the mnemonic ("addq", "ldq", ...).
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsArith reports whether the op executes on an arithmetic functional unit.
func (o Op) IsArith() bool { return o == OpAdd || o == OpMul }

// IsMem reports whether the op accesses the data memory hierarchy.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// Instr is one static instruction. Dynamic information (the effective
// address of a memory operation, the outcome of a branch) is produced per
// iteration by the program's address and branch generators in package prog.
type Instr struct {
	Op   Op
	Dest Reg // destination register; RZero when none
	Src1 Reg // first source; RZero when unused
	Src2 Reg // second source; RZero when unused or immediate form

	// Imm is the immediate operand for immediate-form arithmetic. It is
	// only meaningful when RegReg is false.
	Imm int16

	// RegReg selects the register-register form for arithmetic. The
	// paper's "register usage" knob controls the fraction of reg-reg
	// instructions, which in turn controls how many architected register
	// values are ACE.
	RegReg bool

	// AddrGen selects which of the program's address generators produces
	// the effective address for a memory op (index into prog.Program's
	// generator table). Meaningless for non-memory ops.
	AddrGen int

	// BrGen selects the program's branch-outcome generator for OpBranch.
	BrGen int

	// UnACE marks the instruction as dynamically dead / first-level
	// un-ACE (its result provably never influences program output). The
	// stressmark generator never sets this; the workload synthesiser uses
	// it to model the 3-16% dynamically dead instructions reported by
	// Butts & Sohi.
	UnACE bool

	// Label is an optional human-readable tag used in listings.
	Label string
}

// Writes reports whether the instruction produces a register value
// (writes to RZero do not count).
func (in Instr) Writes() bool { return WritesDest(&in) }

// WritesDest is Writes without copying the Instr, for the pipeline's
// per-dispatch hot path; the single source of truth for which ops
// produce a register value.
func WritesDest(in *Instr) bool {
	if in.Dest == RZero {
		return false
	}
	switch in.Op {
	case OpAdd, OpMul, OpLoad:
		return true
	}
	return false
}

// NumSrcRegs returns how many register sources the instruction actually
// reads (RZero sources count: reading the zero register is still a read
// port use, but it never creates a dependence).
func (in Instr) NumSrcRegs() int {
	switch in.Op {
	case OpNop:
		return 0
	case OpAdd, OpMul:
		if in.RegReg {
			return 2
		}
		return 1
	case OpLoad:
		return 1 // base register
	case OpStore:
		return 2 // base register + data register
	case OpBranch:
		return 1
	}
	return 0
}

// SrcRegAt returns the architected register read through physical
// source-operand slot i of in — the pipeline's renaming order: slot 0
// is Src1 for every reading op, slot 1 is Src2 for register-register
// arithmetic and for the store's data operand. RZero when the slot is
// unused. Fault-injection replays report a corrupted register value's
// consumer as (instruction, slot); this maps the slot back to the
// architected register the root-cause walk follows.
func SrcRegAt(in *Instr, i int) Reg {
	switch in.Op {
	case OpAdd, OpMul:
		if i == 0 {
			return in.Src1
		}
		if i == 1 && in.RegReg {
			return in.Src2
		}
	case OpLoad, OpBranch:
		if i == 0 {
			return in.Src1
		}
	case OpStore:
		if i == 0 {
			return in.Src1
		}
		if i == 1 {
			return in.Src2
		}
	}
	return RZero
}

// SrcRegs appends the source registers that create true dependences
// (RZero excluded) to dst and returns it.
func (in Instr) SrcRegs(dst []Reg) []Reg {
	appendIf := func(r Reg) {
		if r != RZero {
			dst = append(dst, r)
		}
	}
	switch in.Op {
	case OpAdd, OpMul:
		appendIf(in.Src1)
		if in.RegReg {
			appendIf(in.Src2)
		}
	case OpLoad:
		appendIf(in.Src1)
	case OpStore:
		appendIf(in.Src1) // base
		appendIf(in.Src2) // data
	case OpBranch:
		appendIf(in.Src1)
	}
	return dst
}

// String renders the instruction in an Alpha-like assembly syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpAdd, OpMul:
		if in.RegReg {
			return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Src1, in.Src2, in.Dest)
		}
		return fmt.Sprintf("%s %s, #%d, %s", in.Op, in.Src1, in.Imm, in.Dest)
	case OpLoad:
		return fmt.Sprintf("%s %s, (%s)[ag%d]", in.Op, in.Dest, in.Src1, in.AddrGen)
	case OpStore:
		return fmt.Sprintf("%s %s, (%s)[ag%d]", in.Op, in.Src2, in.Src1, in.AddrGen)
	case OpBranch:
		return fmt.Sprintf("%s %s[bg%d]", in.Op, in.Src1, in.BrGen)
	}
	return fmt.Sprintf("?%d", in.Op)
}

// Validate reports the first structural problem with the instruction, or
// nil. It is used by the code generator's self-checks and by the
// failure-injection tests.
func (in Instr) Validate() error {
	if in.Op >= numOps {
		return fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	for _, r := range []Reg{in.Dest, in.Src1, in.Src2} {
		if !r.Valid() {
			return fmt.Errorf("isa: invalid register %d in %v", r, uint8(r))
		}
	}
	if in.Op == OpStore && in.Dest != RZero {
		return fmt.Errorf("isa: store must not write a register: %v", in)
	}
	if in.Op == OpBranch && in.Dest != RZero {
		return fmt.Errorf("isa: branch must not write a register: %v", in)
	}
	if in.Op.IsMem() && in.AddrGen < 0 {
		return fmt.Errorf("isa: memory op without address generator: %v", in)
	}
	return nil
}

// InstrBits is the architectural size of one instruction word in bits,
// used for I-cache footprints (Alpha instructions are 4 bytes).
const InstrBits = 32

// InstrBytes is InstrBits in bytes.
const InstrBytes = InstrBits / 8
