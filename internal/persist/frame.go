package persist

// The CRC frame is the corruption boundary of every on-disk cache
// entry (DESIGN.md §11): a fixed magic, the payload length and a
// CRC-32C over the payload, followed by the payload bytes. Readers
// validate the whole frame before handing a single payload byte to a
// decoder, so a torn write, a truncated file or an arbitrary bit flip
// anywhere in the entry surfaces as ErrCorrupt — which internal/simcache
// turns into quarantine-plus-miss, never a wrong result.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// frameMagic opens every framed entry. Any change to the frame layout
// must change the magic (readers treat unknown layouts as corrupt).
var frameMagic = [8]byte{'A', 'V', 'F', 'C', 'R', 'C', '0', '1'}

// frameHeaderSize is magic + uint64 payload length + uint32 CRC-32C.
const frameHeaderSize = 8 + 8 + 4

// castagnoli is the CRC-32C table shared by all frame operations.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a framed entry that failed validation: missing or
// unknown magic, an impossible length, a checksum mismatch, or trailing
// garbage. Callers should treat the entry as absent (and quarantine the
// file), never as data.
var ErrCorrupt = errors.New("persist: corrupt framed entry")

// EncodeFramed wraps payload in the CRC frame.
func EncodeFramed(payload []byte) []byte {
	out := make([]byte, frameHeaderSize+len(payload))
	copy(out, frameMagic[:])
	binary.LittleEndian.PutUint64(out[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[16:], crc32.Checksum(payload, castagnoli))
	copy(out[frameHeaderSize:], payload)
	return out
}

// DecodeFramed validates the frame and returns the payload (aliasing
// b's memory). Every failure mode — short input, wrong magic, length
// mismatch, checksum mismatch — returns an error wrapping ErrCorrupt.
func DecodeFramed(b []byte) ([]byte, error) {
	if len(b) < frameHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrCorrupt, len(b), frameHeaderSize)
	}
	if [8]byte(b[:8]) != frameMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint64(b[8:])
	if n != uint64(len(b)-frameHeaderSize) {
		return nil, fmt.Errorf("%w: payload length %d, have %d bytes", ErrCorrupt, n, len(b)-frameHeaderSize)
	}
	payload := b[frameHeaderSize:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[16:]); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	return payload, nil
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory plus rename, so concurrent readers (and a crash at any
// instant) observe either the old entry or the complete new one, never
// a partial write — the atomic-write discipline every durable artefact
// in this repository shares.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr != nil || cerr != nil {
		os.Remove(name)
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("persist: %w", werr)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// WriteFramedFile atomically writes payload to path inside the CRC
// frame.
func WriteFramedFile(path string, payload []byte) error {
	return WriteFileAtomic(path, EncodeFramed(payload))
}

// ReadFramedFile reads path and validates its frame, returning the
// payload. Read errors pass through; validation failures wrap
// ErrCorrupt.
func ReadFramedFile(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeFramed(b)
}
