// Package cache models the memory hierarchy of the simulated processor
// (L1 instruction and data caches, unified L2, data TLB) and computes
// cache AVF using the lifetime analysis of Biswas et al. (ISCA'05), as
// used by the paper's SimSoda-based AVF simulator.
//
// Lifetime rules, applied per byte of a writeback cache:
//
//	fill→read, read→read, write→read   ACE
//	write→evict (dirty writeback)      ACE
//	fill→write, read→write, x→evict    un-ACE (x = fill or read)
//
// At the end of a simulation, dirty bytes are closed as ACE (their
// writeback is still architecturally required); clean bytes are closed
// un-ACE. The tag array is approximated per line as ACE from fill to the
// end of the line's last ACE byte interval.
package cache

import "fmt"

// Byte lifetime states.
const (
	stInvalid uint8 = iota
	stFill          // filled, not yet accessed
	stRead          // last access was a read
	stWrite         // last access was a write (dirty)
)

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int // at most 64 (dirty masks are 64-bit)
	Ways       int // 1 = direct mapped
	HitLatency int // cycles
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("cache %s: non-positive size %d", c.Name, c.SizeBytes)
	case c.LineBytes <= 0 || c.LineBytes > 64:
		return fmt.Errorf("cache %s: line size %d out of range (1..64)", c.Name, c.LineBytes)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache %s: non-positive associativity %d", c.Name, c.Ways)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by line*ways", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// NumSets returns the set count of this geometry.
func (c Config) NumSets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// NumLines returns the line count of this geometry.
func (c Config) NumLines() int { return c.SizeBytes / c.LineBytes }

// DataBits returns the data-array size in bits.
func (c Config) DataBits() uint64 { return uint64(c.SizeBytes) * 8 }

// TagBitsPerLine returns the width of one tag entry (tag + valid + dirty)
// assuming 44-bit physical addresses.
func (c Config) TagBitsPerLine() uint64 {
	idx := log2(c.NumSets())
	off := log2(c.LineBytes)
	const physBits = 44
	tag := physBits - idx - off
	if tag < 1 {
		tag = 1
	}
	return uint64(tag) + 2
}

// TagBits returns the tag-array size in bits.
func (c Config) TagBits() uint64 { return c.TagBitsPerLine() * uint64(c.NumLines()) }

// Bits returns data + tag bits for this geometry.
func (c Config) Bits() uint64 { return c.DataBits() + c.TagBits() }

// Writeback describes a dirty line leaving a cache.
type Writeback struct {
	Addr      uint64 // line-aligned address
	DirtyMask uint64 // bit i set = byte i of the line is dirty
}

type line struct {
	tag   uint64
	valid bool
	lru   int64 // last-use time

	fillTime   int64
	lastAceEnd int64

	byteState []uint8
	byteTime  []int64
}

// Cache is a set-associative writeback cache with LRU replacement and
// per-byte lifetime ACE accounting. Not safe for concurrent use.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	setMask  uint64
	lines    []line // sets*ways, way-major within a set

	aceByteCycles uint64 // data-array ACE, in byte-cycles
	tagAceCycles  uint64 // tag-array ACE, in line-cycles
	windowStart   int64

	// Stats since the last ResetStats.
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// New builds a cache; the configuration must validate.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
		lines:   make([]line, sets*cfg.Ways),
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	// One backing allocation for all per-byte arrays.
	states := make([]uint8, sets*cfg.Ways*cfg.LineBytes)
	times := make([]int64, sets*cfg.Ways*cfg.LineBytes)
	for i := range c.lines {
		c.lines[i].byteState = states[i*cfg.LineBytes : (i+1)*cfg.LineBytes]
		c.lines[i].byteTime = times[i*cfg.LineBytes : (i+1)*cfg.LineBytes]
	}
	return c, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Lines returns the total number of lines.
func (c *Cache) Lines() int { return c.sets * c.cfg.Ways }

// DataBits returns the size of the data array in bits.
func (c *Cache) DataBits() uint64 { return c.cfg.DataBits() }

// TagBits returns the size of the whole tag array in bits.
func (c *Cache) TagBits() uint64 { return c.cfg.TagBits() }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	l := addr >> c.lineBits
	return int(l & c.setMask), l >> uint(log2(c.sets))
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

// Probe reports whether addr currently hits, without touching any state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[set*c.cfg.Ways+w]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

func (c *Cache) find(addr uint64) *line {
	set, tag := c.index(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[set*c.cfg.Ways+w]
		if ln.valid && ln.tag == tag {
			return ln
		}
	}
	return nil
}

// Touch applies a read or write of size bytes at addr to a resident
// line, updating LRU state and byte lifetimes. The access must not cross
// a line boundary and the line must be resident (callers Probe/Fill
// first); violations return an error so the pipeline's invariant tests
// can catch them.
func (c *Cache) Touch(now int64, addr uint64, size int, write bool) error {
	hit, err := c.TouchHit(now, addr, size, write)
	if err == nil && !hit {
		return fmt.Errorf("cache %s: touch of non-resident address %#x", c.cfg.Name, addr)
	}
	return err
}

// TouchHit applies a read or write of size bytes at addr when the line
// is resident and reports whether it was; on a miss no state changes.
// It folds the hierarchy's Probe+Touch hit-path pair into one lookup.
func (c *Cache) TouchHit(now int64, addr uint64, size int, write bool) (bool, error) {
	ln := c.find(addr)
	if ln == nil {
		return false, nil
	}
	off := int(addr & uint64(c.cfg.LineBytes-1))
	if off+size > c.cfg.LineBytes {
		return false, fmt.Errorf("cache %s: access %#x size %d crosses line boundary", c.cfg.Name, addr, size)
	}
	ln.lru = now
	c.Accesses++
	for b := off; b < off+size; b++ {
		c.closeByte(ln, b, now, write)
	}
	return true, nil
}

// TouchMask applies a write to the bytes selected by mask (bit i = byte i
// of the line containing addr). Used to apply writeback dirty masks from
// an upper-level cache.
func (c *Cache) TouchMask(now int64, addr uint64, mask uint64) error {
	ln := c.find(addr)
	if ln == nil {
		return fmt.Errorf("cache %s: masked touch of non-resident address %#x", c.cfg.Name, addr)
	}
	ln.lru = now
	c.Accesses++
	for b := 0; b < c.cfg.LineBytes; b++ {
		if mask&(1<<uint(b)) != 0 {
			c.closeByte(ln, b, now, true)
		}
	}
	return nil
}

// closeByte ends the byte's current lifetime interval at time now and
// begins the next one (read or write).
func (c *Cache) closeByte(ln *line, b int, now int64, write bool) {
	st := ln.byteState[b]
	t0 := ln.byteTime[b]
	if st != stInvalid && !write {
		// fill→read, read→read, write→read are all ACE.
		c.addAce(ln, t0, now)
	}
	// Any transition into a write is un-ACE for the closed interval.
	if write {
		ln.byteState[b] = stWrite
	} else {
		ln.byteState[b] = stRead
	}
	ln.byteTime[b] = now
}

func (c *Cache) addAce(ln *line, t0, t1 int64) {
	if t0 < c.windowStart {
		t0 = c.windowStart
	}
	if t1 > t0 {
		c.aceByteCycles += uint64(t1 - t0)
		if t1 > ln.lastAceEnd {
			ln.lastAceEnd = t1
		}
	}
}

// Fill allocates the line containing addr (whole-line fill at time now),
// evicting the LRU way if necessary. It returns the writeback for a
// dirty victim. Filling an already-resident line is an error.
func (c *Cache) Fill(now int64, addr uint64) (wb Writeback, dirty bool, err error) {
	if c.find(addr) != nil {
		return Writeback{}, false, fmt.Errorf("cache %s: double fill of %#x", c.cfg.Name, addr)
	}
	set, tag := c.index(addr)
	victim := &c.lines[set*c.cfg.Ways]
	for w := 1; w < c.cfg.Ways; w++ {
		ln := &c.lines[set*c.cfg.Ways+w]
		if !ln.valid {
			victim = ln
			break
		}
		if victim.valid && ln.lru < victim.lru {
			victim = ln
		}
	}
	if victim.valid {
		wb, dirty = c.evictLine(victim, now, set)
	}
	c.Misses++
	victim.valid = true
	victim.tag = tag
	victim.lru = now
	victim.fillTime = now
	victim.lastAceEnd = now
	for b := 0; b < c.cfg.LineBytes; b++ {
		victim.byteState[b] = stFill
		victim.byteTime[b] = now
	}
	return wb, dirty, nil
}

// evictLine closes all byte lifetimes and the tag lifetime of ln.
func (c *Cache) evictLine(ln *line, now int64, set int) (wb Writeback, dirty bool) {
	var mask uint64
	for b := 0; b < c.cfg.LineBytes; b++ {
		if ln.byteState[b] == stWrite {
			// write→evict: writeback data is ACE.
			c.addAce(ln, ln.byteTime[b], now)
			mask |= 1 << uint(b)
		}
		ln.byteState[b] = stInvalid
	}
	// Tag approximation: ACE from fill to last ACE byte-interval end.
	t0 := ln.fillTime
	if t0 < c.windowStart {
		t0 = c.windowStart
	}
	if ln.lastAceEnd > t0 {
		c.tagAceCycles += uint64(ln.lastAceEnd - t0)
	}
	ln.valid = false
	if mask != 0 {
		c.Writebacks++
		lineAddr := (ln.tag<<uint(log2(c.sets)) | uint64(set)) << c.lineBits
		return Writeback{Addr: lineAddr, DirtyMask: mask}, true
	}
	return Writeback{}, false
}

// Finalize closes every resident line at time now, as if evicted: dirty
// bytes end ACE (their writeback remains architecturally required), clean
// bytes end un-ACE. Call exactly once, at the end of a measurement.
func (c *Cache) Finalize(now int64) {
	for set := 0; set < c.sets; set++ {
		for w := 0; w < c.cfg.Ways; w++ {
			ln := &c.lines[set*c.cfg.Ways+w]
			if ln.valid {
				c.evictLine(ln, now, set)
			}
		}
	}
}

// ResetACE restarts ACE measurement at time now without disturbing cache
// contents: used at the end of a warmup window. Open byte intervals are
// clipped at now.
func (c *Cache) ResetACE(now int64) {
	c.aceByteCycles, c.tagAceCycles = 0, 0
	c.windowStart = now
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		if ln.fillTime < now {
			ln.fillTime = now
		}
		if ln.lastAceEnd < now {
			ln.lastAceEnd = now
		}
		// Byte interval starts are left alone deliberately: an interval
		// spanning the boundary is clipped in addAce via windowStart.
	}
}

// ResetStats clears hit/miss counters.
func (c *Cache) ResetStats() { c.Accesses, c.Misses, c.Writebacks = 0, 0, 0 }

// Reset returns the cache to its power-on state — all lines invalid, ACE
// accumulators and statistics zeroed — without reallocating the line or
// per-byte arrays. A Reset cache behaves identically to a fresh New one
// (Fill rewrites every per-byte field before it is read).
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i].valid = false
	}
	c.aceByteCycles, c.tagAceCycles = 0, 0
	c.windowStart = 0
	c.ResetStats()
}

// DataAVF returns the data-array AVF over a window of cycles cycles.
func (c *Cache) DataAVF(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(c.aceByteCycles) / (float64(c.cfg.SizeBytes) * float64(cycles))
}

// TagAVF returns the (approximated) tag-array AVF.
func (c *Cache) TagAVF(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(c.tagAceCycles) / (float64(c.Lines()) * float64(cycles))
}

// AVF returns the bit-weighted AVF over data and tag arrays.
func (c *Cache) AVF(cycles int64) float64 {
	db, tb := float64(c.DataBits()), float64(c.TagBits())
	return (c.DataAVF(cycles)*db + c.TagAVF(cycles)*tb) / (db + tb)
}

// TotalBits returns data + tag bits.
func (c *Cache) TotalBits() uint64 { return c.DataBits() + c.TagBits() }

// MissRate returns misses/accesses. Fills count as misses; Touch calls
// count as accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}
