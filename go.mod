module avfstress

go 1.24
