package inject

import (
	"fmt"

	"avfstress/internal/isa"
	"avfstress/internal/pipe"
)

// Trial outcome blob codec. v1 blobs were a single outcome byte
// ({0}|{1}); v2 records the full trial outcome — corrupted flag plus the
// first-divergent-commit identity root-cause attribution consumes — as
// one self-describing text line at the same cache keys. The decoder is
// strict (exact canonical re-encode), so a legacy v1 blob, a truncated
// write or any other undecodable entry fails decode and takes the
// discard-and-rebuild path; bit flips inside the blob body never survive
// to decoding at all — the persist layer's CRC framing quarantines them
// as cache misses first.

// encodeTrial renders a trial record as its canonical v2 blob.
func encodeTrial(t pipe.FaultTrial) []byte {
	c := 0
	if t.Corrupted {
		c = 1
	}
	return []byte(fmt.Sprintf("injtrial v2 %d %d %x %d %d",
		c, t.Diverge.Seq, t.Diverge.PC, uint8(t.Diverge.Op), t.Diverge.SrcSlot))
}

// decodeTrial parses a v2 trial blob, rejecting anything that does not
// re-encode to the identical bytes.
func decodeTrial(b []byte) (pipe.FaultTrial, error) {
	var (
		c, op int
		seq   int64
		pc    uint64
		slot  int8
		t     pipe.FaultTrial
	)
	n, err := fmt.Sscanf(string(b), "injtrial v2 %d %d %x %d %d", &c, &seq, &pc, &op, &slot)
	if err != nil || n != 5 {
		return t, fmt.Errorf("inject: undecodable trial blob (%d bytes)", len(b))
	}
	if c != 0 && c != 1 || op > int(isa.OpBranch) {
		return t, fmt.Errorf("inject: trial blob field out of range")
	}
	t.Corrupted = c == 1
	t.Diverge = pipe.Diverge{Seq: seq, PC: pc, Op: isa.Op(op), SrcSlot: slot}
	if string(encodeTrial(t)) != string(b) {
		return pipe.FaultTrial{}, fmt.Errorf("inject: non-canonical trial blob")
	}
	return t, nil
}
