// Package avfstress reproduces "AVF Stressmark: Towards an Automated
// Methodology for Bounding the Worst-Case Vulnerability to Soft Errors"
// (Nair, John, Eeckhout; MICRO 2010) as a Go library.
//
// The package is a facade over the implementation packages:
//
//   - internal/core     — the paper's methodology: GA ⇄ code generator ⇄
//     AVF simulator (Figure 2)
//   - internal/codegen  — the knob-driven, 100%-ACE stressmark generator
//   - internal/ga       — the genetic algorithm (SNAP substitute)
//   - internal/pipe     — the out-of-order Alpha-21264-like core model
//     with ACE/AVF accounting (SimAlpha/SimSoda substitute)
//   - internal/cache    — caches + DTLB with lifetime ACE analysis
//   - internal/workloads— SPEC CPU2006 / MiBench proxy suite
//   - internal/experiments — regeneration of every paper table and figure
//   - internal/inject   — Monte Carlo fault-injection validation of the
//     ACE accounting (DESIGN.md §9)
//
// Quick start:
//
//	cfg := avfstress.Scaled(avfstress.Baseline(), 32)
//	res, err := avfstress.Search(avfstress.SearchSpec{Config: cfg})
//	// res.Knobs is the Figure-5a-style knob table,
//	// res.Result holds per-structure AVFs,
//	// res.Result.SER(cfg, avfstress.UniformRates(1), avfstress.ClassQSRF)
//	// is the core SER in units/bit.
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory and experiment index.
package avfstress

import (
	"context"

	"avfstress/internal/avf"
	"avfstress/internal/codegen"
	"avfstress/internal/core"
	"avfstress/internal/experiments"
	"avfstress/internal/pipe"
	"avfstress/internal/prog"
	"avfstress/internal/scenario"
	"avfstress/internal/uarch"
	"avfstress/internal/workloads"
)

// Configuration and fault-rate types.
type (
	// Config is a complete processor configuration (core + memory).
	Config = uarch.Config
	// FaultRates gives per-structure circuit-level fault rates.
	FaultRates = uarch.FaultRates
	// Structure identifies an SER-tracked hardware structure.
	Structure = uarch.Structure
)

// Microarchitecture configurations (paper Tables I and II).
var (
	// Baseline returns the paper's Table I Alpha-21264-like machine.
	Baseline = uarch.Baseline
	// ConfigA returns the paper's Table II scaled-up machine.
	ConfigA = uarch.ConfigA
	// Scaled shrinks the storage arrays by a factor, keeping the core
	// paper-exact (see DESIGN.md §4 on laptop-scale runs).
	Scaled = uarch.Scaled
)

// Fault-rate sets (paper Figure 8a).
var (
	// UniformRates gives every structure the same rate (paper default 1).
	UniformRates = uarch.UniformRates
	// RHCRates models radiation-hardened ROB/LQ/SQ circuitry.
	RHCRates = uarch.RHCRates
	// EDRRates models error detection and recovery on ROB/LQ/SQ.
	EDRRates = uarch.EDRRates
)

// Simulation types.
type (
	// Program is a synthetic program runnable on the simulator.
	Program = prog.Program
	// RunConfig budgets one simulation.
	RunConfig = pipe.RunConfig
	// Result carries per-structure AVFs and diagnostics of one run.
	Result = avf.Result
	// Class is a presentation/normalisation group of structures.
	Class = avf.Class
)

// SER presentation classes (paper Figures 3-4).
const (
	ClassQS      = avf.ClassQS
	ClassQSRF    = avf.ClassQSRF
	ClassDL1DTLB = avf.ClassDL1DTLB
	ClassL2      = avf.ClassL2
)

// Simulate runs one program on one configuration and returns its AVF
// result (the paper's "AVF simulator" box).
func Simulate(cfg Config, p *Program, rc RunConfig) (*Result, error) {
	return pipe.Simulate(cfg, p, rc)
}

// Stressmark-methodology types (the paper's primary contribution).
type (
	// Knobs are the code-generator parameters (paper §IV-B).
	Knobs = codegen.Knobs
	// SearchSpec parameterises a stressmark search.
	SearchSpec = core.SearchSpec
	// SearchResult is the outcome of a search.
	SearchResult = core.SearchResult
)

// Search runs the automated methodology of the paper's Figure 2: a GA
// search over the code-generator knob space against the AVF simulator.
// The context cancels the search between simulations.
func Search(ctx context.Context, spec SearchSpec) (*SearchResult, error) {
	return core.Search(ctx, spec)
}

// Generate builds a stressmark program from explicit knob settings.
func Generate(cfg Config, k Knobs, iterations int64) (*Program, Knobs, error) {
	return codegen.Generate(cfg, k, iterations)
}

// Workload-suite types.
type (
	// WorkloadProfile describes one benchmark proxy.
	WorkloadProfile = workloads.Profile
)

// Workloads returns the 33 SPEC CPU2006 / MiBench proxy profiles.
func Workloads() []WorkloadProfile { return workloads.Profiles() }

// Experiment harness.
type (
	// ExperimentOptions scopes an experiment run.
	ExperimentOptions = experiments.Options
	// Experiments caches shared work across experiment runners.
	Experiments = experiments.Context
	// ScenarioSpec is the declarative, serialisable description of a
	// scenario portfolio — the submission body of the avfstressd
	// service and the currency of sweep drivers.
	ScenarioSpec = scenario.Spec
)

// NewExperiments prepares the table/figure regeneration harness.
func NewExperiments(opts ExperimentOptions) *Experiments {
	return experiments.NewContext(opts)
}

// NewExperimentsFromSpec builds a harness for a declarative spec and
// returns it with the resolved scenario names (run them with
// Experiments.RunScenarios).
func NewExperimentsFromSpec(sp ScenarioSpec, base ExperimentOptions) (*Experiments, []string, error) {
	return experiments.NewSpecContext(sp, base)
}

// ExperimentNames lists the runnable experiments in paper order.
func ExperimentNames() []string { return experiments.Names() }
